"""Unit tests for repro.lang.ast."""

import pytest

from repro.lang import (
    EPSILON,
    Concat,
    Epsilon,
    Label,
    Nested,
    Reverse,
    Skip,
    Star,
    Union,
    concat,
    label,
    simple_pattern,
    simple_steps,
    strip_skips,
    union,
)


def test_structural_equality_and_hash():
    a = Concat([Label("a"), Label("b")])
    b = Concat([Label("a"), Label("b")])
    assert a == b
    assert hash(a) == hash(b)
    assert a != Concat([Label("b"), Label("a")])


def test_concat_flattens():
    pattern = Concat([Concat([Label("a"), Label("b")]), Label("c")])
    assert [str(p) for p in pattern.parts] == ["a", "b", "c"]


def test_union_flattens():
    pattern = Union([Union([Label("a"), Label("b")]), Label("c")])
    assert len(pattern.parts) == 3


def test_concat_requires_two_parts():
    with pytest.raises(ValueError):
        Concat([Label("a")])


def test_concat_helper_tolerates_few_args():
    assert concat() == EPSILON
    assert concat(Label("a")) == Label("a")
    assert concat(Label("a"), EPSILON) == Label("a")


def test_union_helper_dedupes():
    assert union(Label("a"), Label("a")) == Label("a")
    assert isinstance(union(Label("a"), Label("b")), Union)


def test_str_minimal_parentheses():
    pattern = Concat([Union([Label("a"), Label("b")]), Label("c")])
    assert str(pattern) == "(a+b).c"
    pattern = Union([Concat([Label("a"), Label("b")]), Label("c")])
    assert str(pattern) == "a.b+c"


def test_str_reverse_and_star():
    assert str(Reverse(Label("a"))) == "a-"
    assert str(Star(Label("a"))) == "a*"
    assert str(Reverse(Concat([Label("a"), Label("b")]))) == "(a.b)-"


def test_str_nested_and_skip():
    assert str(Nested(Label("a"))) == "[a]"
    assert str(Skip(Concat([Label("a"), Label("b")]))) == "<<a.b>>"


def test_labels_collects_all():
    pattern = Concat([Label("a"), Nested(Skip(Label("b"))), Reverse(Label("c"))])
    assert pattern.labels() == {"a", "b", "c"}


def test_is_simple():
    assert simple_pattern(["a", "b-"]).is_simple()
    assert not Nested(Label("a")).is_simple()
    assert not Concat([Label("a"), Skip(Label("b"))]).is_simple()
    assert EPSILON.is_simple()


def test_reverse_collapses_double_reversal():
    pattern = Label("a")
    assert pattern.reverse().reverse() == pattern


def test_reverse_of_concat_reverses_order():
    pattern = concat(Label("a"), Label("b"))
    assert str(pattern.reverse()) == "b-.a-"


def test_reverse_of_union_is_memberwise():
    pattern = union(Label("a"), Label("b"))
    assert pattern.reverse() == union(Reverse(Label("a")), Reverse(Label("b")))


def test_reverse_of_nested_is_identity():
    pattern = Nested(Label("a"))
    assert pattern.reverse() == pattern


def test_reverse_of_skip_reverses_inner():
    pattern = Skip(concat(Label("a"), Label("b")))
    assert str(pattern.reverse()) == "<<b-.a->>"


def test_reverse_of_epsilon():
    assert EPSILON.reverse() == EPSILON


def test_simple_pattern_from_strings_with_trailing_dash():
    pattern = simple_pattern(["a", "b-"])
    assert str(pattern) == "a.b-"


def test_simple_pattern_from_tuples():
    pattern = simple_pattern([("a", False), ("b", True)])
    assert str(pattern) == "a.b-"


def test_simple_steps_roundtrip():
    steps = [("a", False), ("b", True), ("a", False)]
    assert simple_steps(simple_pattern(steps)) == steps


def test_simple_steps_rejects_rre():
    with pytest.raises(ValueError):
        simple_steps(Nested(Label("a")))


def test_strip_skips():
    pattern = Skip(concat(Label("a"), Skip(Label("b"))))
    assert str(strip_skips(pattern)) == "a.b"


def test_strip_skips_inside_nested():
    pattern = Nested(Skip(Label("a")))
    assert strip_skips(pattern) == Nested(Label("a"))


def test_num_operations():
    assert Label("a").num_operations() == 1
    assert concat(Label("a"), Label("b")).num_operations() == 3


def test_label_requires_name():
    with pytest.raises(ValueError):
        Label("")


def test_epsilon_singleton_semantics():
    assert Epsilon() == EPSILON
    assert str(EPSILON) == "eps"
