"""Property-based tests: matrix semantics == enumeration semantics.

Random small graphs and random star-free RREs; the commuting matrix must
agree with literal instance counting everywhere (Proposition 3 and the
Section-4.3 rules).  Star is excluded from the random patterns because
counting diverges on the (frequently cyclic) random graphs; its acyclic
behaviour is covered by the unit tests.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graph import GraphDatabase, Schema
from repro.lang import CommutingMatrixEngine, enumerate_instances
from repro.lang.ast import (
    Concat,
    Label,
    Nested,
    Reverse,
    Skip,
    Union,
)

LABELS = ["a", "b"]
NODES = list(range(5))


@st.composite
def graphs(draw):
    schema = Schema(LABELS)
    db = GraphDatabase(schema)
    for node in NODES:
        db.add_node(node)
    edges = draw(
        st.lists(
            st.tuples(
                st.sampled_from(NODES),
                st.sampled_from(LABELS),
                st.sampled_from(NODES),
            ),
            max_size=12,
        )
    )
    for edge in edges:
        db.add_edge(*edge)
    return db


def pattern_strategy():
    # Unions are restricted to distinct single steps.  For overlapping
    # disjuncts like ``a + <<a>>`` the paper's set-based instance
    # definition (which identifies I(<<a>>) with I(a), Prop 3(2)) and its
    # own matrix rule (which sums syntactically distinct disjuncts)
    # contradict each other; the library follows each definition
    # literally, so the property only holds on the unambiguous fragment.
    leaves = st.sampled_from(
        [
            Label("a"),
            Label("b"),
            Reverse(Label("a")),
            Union([Label("a"), Label("b")]),
            Union([Label("a"), Reverse(Label("b"))]),
        ]
    )

    def extend(children):
        return st.one_of(
            children.map(Reverse),
            children.map(Nested),
            children.map(Skip),
            st.tuples(children, children).map(lambda p: Concat(list(p))),
        )

    return st.recursive(leaves, extend, max_leaves=4)


@given(db=graphs(), pattern=pattern_strategy())
@settings(max_examples=120, deadline=None)
def test_matrix_counts_equal_enumeration_counts(db, pattern):
    engine = CommutingMatrixEngine(db)
    matrix = engine.matrix(pattern)
    instances = enumerate_instances(db, pattern)
    indexer = engine.indexer
    for u in NODES:
        for v in NODES:
            expected = instances.count(u, v)
            actual = matrix[indexer.index_of(u), indexer.index_of(v)]
            assert actual == expected, (str(pattern), u, v)


@given(db=graphs(), pattern=pattern_strategy())
@settings(max_examples=60, deadline=None)
def test_proposition3_skip_is_boolean(db, pattern):
    """Prop 3(1): |I(<<p>>)(u,v)| is 1 iff |I(p)(u,v)| > 0 else 0."""
    engine = CommutingMatrixEngine(db)
    base = engine.matrix(pattern)
    skipped = engine.matrix(Skip(pattern))
    indexer = engine.indexer
    for u in NODES:
        for v in NODES:
            i, j = indexer.index_of(u), indexer.index_of(v)
            assert skipped[i, j] == (1.0 if base[i, j] > 0 else 0.0)


@given(db=graphs(), pattern=pattern_strategy())
@settings(max_examples=60, deadline=None)
def test_proposition3_nested_equals_row_sums(db, pattern):
    """Prop 3(5): |I([p])(u,u)| equals the total p-instances leaving u."""
    engine = CommutingMatrixEngine(db)
    base = engine.matrix(pattern)
    nested = engine.matrix(Nested(pattern))
    indexer = engine.indexer
    for u in NODES:
        i = indexer.index_of(u)
        row_total = base[i, :].sum()
        assert nested[i, i] == row_total
    # and [p] is diagonal
    off_diagonal = nested.copy()
    off_diagonal.setdiag(0)
    off_diagonal.eliminate_zeros()
    assert off_diagonal.nnz == 0


@given(db=graphs(), pattern=pattern_strategy())
@settings(max_examples=60, deadline=None)
def test_reverse_transposes_counts(db, pattern):
    engine = CommutingMatrixEngine(db)
    base = engine.matrix(pattern)
    reversed_ = engine.matrix(pattern.reverse())
    assert (base.T != reversed_).nnz == 0


@given(db=graphs(), first=pattern_strategy(), second=pattern_strategy())
@settings(max_examples=60, deadline=None)
def test_proposition3_concat_is_matrix_product(db, first, second):
    """Prop 3(3): counts of p1.p2 are the product-sum over midpoints."""
    engine = CommutingMatrixEngine(db)
    product = engine.matrix(Concat([first, second]))
    expected = engine.matrix(first) @ engine.matrix(second)
    assert abs(product - expected).max() == 0
