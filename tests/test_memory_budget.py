"""Byte-budget tests: eviction, spill, streaming, and result parity.

The memory budget must change *where* matrices live (cache vs
recompute) without ever changing *what* a query returns — every test
here compares budgeted runs against unbudgeted ones bitwise.
"""

import numpy as np
import pytest

from repro.api import SimilarityService, SimilaritySession
from repro.exceptions import ConfigurationError, EvaluationError
from repro.lang import CommutingMatrixEngine, parse_pattern

PATTERN = "r-a-.p-in.p-in-.r-a"

# Registry name -> constructor options (pattern-based algorithms need
# one; the structural baselines run on the whole graph).
ALGORITHM_OPTIONS = {
    "relsim": {"pattern": PATTERN},
    "pathsim": {"pattern": PATTERN},
    "hetesim": {"pattern": PATTERN},
    "rwr": {},
    "simrank": {"iterations": 3},
    "pattern-rwr": {"pattern": PATTERN},
    "pattern-simrank": {"pattern": PATTERN, "iterations": 3},
    "common-neighbors": {},
    "katz": {},
}

CHAIN_PATTERNS = ["w-.w", "w-.w.w-.w", "r-a-.p-in.p-in-.r-a", "w.w-"]


def assert_same_rankings(lhs, rhs):
    assert set(lhs) == set(rhs)
    for query in lhs:
        assert lhs[query].items() == rhs[query].items(), query


def assert_same_matrix(left, right):
    assert left.shape == right.shape
    assert np.array_equal(left.indptr, right.indptr)
    assert np.array_equal(left.indices, right.indices)
    assert np.array_equal(left.data, right.data)


# ----------------------------------------------------------------------
# Configuration and reporting
# ----------------------------------------------------------------------
def test_memory_budget_validation(fig1):
    with pytest.raises(ConfigurationError):
        CommutingMatrixEngine(fig1, memory_budget=0)
    with pytest.raises(ConfigurationError):
        CommutingMatrixEngine(fig1, memory_budget=-5)
    engine = CommutingMatrixEngine(fig1, memory_budget=1 << 20)
    assert engine.memory_budget == 1 << 20
    assert CommutingMatrixEngine(fig1).memory_budget is None


def test_cache_info_reports_budget_fields(fig1):
    engine = CommutingMatrixEngine(fig1, memory_budget=1 << 20)
    info = engine.cache_info()
    assert info["memory_budget"] == 1 << 20
    assert info["budget_used"] == info["bytes"]
    assert info["spilled"] == 0
    assert info["streamed"] == 0
    unbudgeted = CommutingMatrixEngine(fig1).cache_info()
    assert unbudgeted["memory_budget"] is None


def test_session_and_service_forward_budget(fig1):
    session = SimilaritySession(fig1, memory_budget=123456)
    assert session.engine.memory_budget == 123456
    service = SimilarityService(fig1, memory_budget=123456)
    assert service.session.engine.memory_budget == 123456


# ----------------------------------------------------------------------
# Eviction and spill
# ----------------------------------------------------------------------
def test_budget_invariant_holds_after_every_query(dblp_small):
    database = dblp_small.database
    reference = CommutingMatrixEngine(database)
    for text in CHAIN_PATTERNS:
        reference.matrix(parse_pattern(text))
    peak = reference.cache_info()["bytes"]
    assert peak > 0

    budget = max(peak // 3, 1)
    engine = CommutingMatrixEngine(database, memory_budget=budget)
    for text in CHAIN_PATTERNS:
        expected = reference.matrix(parse_pattern(text))
        actual = engine.matrix(parse_pattern(text))
        assert_same_matrix(actual, expected)
        assert engine.cache_info()["bytes"] <= budget, text
    info = engine.cache_info()
    # A third of the peak cannot hold everything: the budget must have
    # actually evicted, not just fit by luck.
    assert info["spilled"] > 0
    assert info["bytes"] < peak


def test_oversized_product_spills_but_query_completes(dblp_small):
    database = dblp_small.database
    pattern = parse_pattern("w-.w")
    expected = CommutingMatrixEngine(database).matrix(pattern)
    # One byte: nothing fits, every publish spills immediately.
    engine = CommutingMatrixEngine(database, memory_budget=1)
    assert_same_matrix(engine.matrix(pattern), expected)
    info = engine.cache_info()
    assert info["matrices"] == 0
    assert info["bytes"] == 0
    assert info["spilled"] > 0
    # The spilled entry is recomputed on the next use, same answer.
    assert_same_matrix(engine.matrix(pattern), expected)


def test_budget_eviction_drops_derived_state_with_matrix(dblp_small):
    database = dblp_small.database
    engine = CommutingMatrixEngine(
        database, memory_budget=512 * 1024 * 1024
    )
    for text in CHAIN_PATTERNS:
        engine.matrix(parse_pattern(text))
        engine.column_norms(parse_pattern(text))
        engine.diagonal(parse_pattern(text))
    info = engine.cache_info()
    assert info["column_norms"] > 0 and info["diagonals"] > 0
    # Shrink the budget below one matrix and force an eviction pass:
    # every vector must leave with its matrix, no orphans.
    engine._memory_budget = 1
    with engine._lock:
        engine._evict()
    info = engine.cache_info()
    assert info["matrices"] == 0
    assert info["column_norms"] == 0
    assert info["diagonals"] == 0
    assert info["bytes"] == 0


def test_budget_holds_after_apply_delta(dblp_small):
    database = dblp_small.database.copy()
    reference = CommutingMatrixEngine(database.copy())
    for text in CHAIN_PATTERNS:
        reference.matrix(parse_pattern(text))
    budget = max(reference.cache_info()["bytes"] // 3, 1)

    engine = CommutingMatrixEngine(database, memory_budget=budget)
    for text in CHAIN_PATTERNS:
        engine.matrix(parse_pattern(text))
    authors = database.nodes_of_type("author")
    papers = database.nodes_of_type("paper")
    engine.apply_delta(edges_added=[(authors[0], "w", papers[-1])])
    assert engine.cache_info()["bytes"] <= budget


# ----------------------------------------------------------------------
# Warm-set and materialization guards
# ----------------------------------------------------------------------
def test_warm_exceeds_limits_by_bytes_and_count(dblp_small):
    database = dblp_small.database
    patterns = [parse_pattern(text) for text in CHAIN_PATTERNS]
    assert not CommutingMatrixEngine(database).warm_exceeds_limits(patterns)
    tight = CommutingMatrixEngine(database, memory_budget=1)
    assert tight.warm_exceeds_limits(patterns)
    capped = CommutingMatrixEngine(database, max_cached_matrices=2)
    assert capped.warm_exceeds_limits(patterns)
    assert not capped.warm_exceeds_limits(patterns[:2])


def test_materialize_refuses_budget_it_cannot_fit(dblp_small):
    engine = CommutingMatrixEngine(dblp_small.database, memory_budget=1)
    with pytest.raises(EvaluationError):
        engine.materialize_simple_patterns(max_length=2)


# ----------------------------------------------------------------------
# Result parity: every algorithm, budgeted vs unbudgeted
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(ALGORITHM_OPTIONS))
def test_tight_budget_rankings_bitwise_identical(fig1, name):
    queries = ["DataMining", "Databases"]
    baseline = SimilaritySession(fig1)
    expected = baseline.rank_many(
        queries, algorithm=name, **ALGORITHM_OPTIONS[name]
    )
    # ~64 KiB on the Figure-1 fragment: room for a matrix or two, far
    # too small for a warm pattern set — the spill path must carry the
    # query to the same answer.
    session = SimilaritySession(fig1, memory_budget=1 << 16)
    actual = session.rank_many(
        queries, algorithm=name, **ALGORITHM_OPTIONS[name]
    )
    assert_same_rankings(actual, expected)


# ----------------------------------------------------------------------
# Streamed chain execution parity
# ----------------------------------------------------------------------
def test_streamed_chain_parity(dblp_small, monkeypatch):
    """Row-blocked chain products are bitwise-identical to whole ones.

    Forces tiny row blocks (a few KiB) so every chain splits into many
    blocks; counts are integers exact in float64, so the re-association
    must not change a single bit.
    """
    database = dblp_small.database
    reference = CommutingMatrixEngine(database)
    engine = CommutingMatrixEngine(database, memory_budget=1 << 30)
    monkeypatch.setattr(engine, "_chunk_budget", lambda: 4096)
    for text in CHAIN_PATTERNS:
        plan = engine.compile(parse_pattern(text))
        if plan.kind != "chain":
            continue
        streamed = engine._canonicalize(engine._streamed_chain(plan))
        assert_same_matrix(streamed, reference.matrix(parse_pattern(text)))
    assert engine.cache_info()["streamed"] > 0


def test_streaming_engages_under_budget_end_to_end(dblp_small, monkeypatch):
    database = dblp_small.database
    pattern = parse_pattern("w-.w.w-.w")
    expected = CommutingMatrixEngine(database).matrix(pattern)
    engine = CommutingMatrixEngine(database, memory_budget=1 << 30)
    # Small databases never trip the 1 MiB chunk floor; drop it so the
    # full _should_stream -> _streamed_chain path runs in-tree.
    monkeypatch.setattr(engine, "_chunk_budget", lambda: 2048)
    assert_same_matrix(engine.matrix(pattern), expected)
    assert engine.cache_info()["streamed"] > 0


def test_no_streaming_without_budget(dblp_small):
    engine = CommutingMatrixEngine(dblp_small.database)
    engine.matrix(parse_pattern("w-.w.w-.w"))
    info = engine.cache_info()
    assert info["streamed"] == 0
    assert info["spilled"] == 0
