"""Tests for the chase procedure over full tgds."""

import pytest

from repro.constraints import parse_tgd, satisfies
from repro.exceptions import ConstraintError
from repro.graph import GraphDatabase, Schema
from repro.transform import chase, chase_delta, repair_report


@pytest.fixture
def schema():
    return Schema(["a", "b", "c"])


def make_db(schema, edges):
    db = GraphDatabase(schema)
    db.add_edges(edges)
    return db


def test_chase_adds_missing_conclusions(schema):
    tgd = parse_tgd("(x, a, y) & (y, b, z) -> (x, c, z)")
    db = make_db(schema, [(1, "a", 2), (2, "b", 3)])
    chased = chase(db, [tgd])
    assert chased.has_edge(1, "c", 3)
    assert satisfies(chased, tgd)


def test_chase_reaches_fixpoint_on_recursive_constraint(schema):
    # Transitivity of a: requires multiple rounds on a chain.
    tgd = parse_tgd("(x, a, y) & (y, a, z) -> (x, a, z)")
    db = make_db(schema, [(1, "a", 2), (2, "a", 3), (3, "a", 4)])
    chased = chase(db, [tgd])
    assert chased.has_edge(1, "a", 4)
    assert satisfies(chased, tgd)


def test_chase_noop_on_satisfied_database(schema):
    tgd = parse_tgd("(x, a, y) -> (y, b, x)")
    db = make_db(schema, [(1, "a", 2), (2, "b", 1)])
    chased = chase(db, [tgd])
    assert chased.edge_set() == db.edge_set()


def test_chase_copy_by_default(schema):
    tgd = parse_tgd("(x, a, y) -> (x, b, y)")
    db = make_db(schema, [(1, "a", 2)])
    chased = chase(db, [tgd])
    assert not db.has_edge(1, "b", 2)
    assert chased.has_edge(1, "b", 2)


def test_chase_in_place(schema):
    tgd = parse_tgd("(x, a, y) -> (x, b, y)")
    db = make_db(schema, [(1, "a", 2)])
    result = chase(db, [tgd], in_place=True)
    assert result is db
    assert db.has_edge(1, "b", 2)


def test_chase_reversed_conclusion(schema):
    tgd = parse_tgd("(x, a, y) -> (y, b-, x)")
    db = make_db(schema, [(1, "a", 2)])
    chased = chase(db, [tgd])
    # (y, b-, x) constructs (x, b, y).
    assert chased.has_edge(1, "b", 2)


def test_chase_rejects_existential_tgd(schema):
    tgd = parse_tgd("(x, a, y) -> (x, b, z)")
    db = make_db(schema, [(1, "a", 2)])
    with pytest.raises(ConstraintError):
        chase(db, [tgd])


def test_chase_rejects_complex_conclusion(schema):
    tgd = parse_tgd("(x, a, y) -> (x, b*, y)")
    db = make_db(schema, [(1, "a", 2)])
    with pytest.raises(ConstraintError):
        chase(db, [tgd])


def test_chase_multiple_constraints(schema):
    tgds = [
        parse_tgd("(x, a, y) -> (x, b, y)"),
        parse_tgd("(x, b, y) -> (x, c, y)"),
    ]
    db = make_db(schema, [(1, "a", 2)])
    chased = chase(db, tgds)
    assert chased.has_edge(1, "b", 2)
    assert chased.has_edge(1, "c", 2)  # cascaded across rounds


def test_chase_max_rounds_guard(schema):
    tgd = parse_tgd("(x, a, y) & (y, a, z) -> (x, a, z)")
    db = make_db(schema, [(i, "a", i + 1) for i in range(6)])
    with pytest.raises(ConstraintError):
        chase(db, [tgd], max_rounds=1)


def test_chase_delta(schema):
    tgd = parse_tgd("(x, a, y) -> (x, b, y)")
    db = make_db(schema, [(1, "a", 2), (3, "a", 4), (1, "b", 2)])
    delta = chase_delta(db, [tgd])
    assert delta == {(3, "b", 4)}


def test_chase_delta_empty_when_clean(schema):
    tgd = parse_tgd("(x, a, y) -> (x, b, y)")
    db = make_db(schema, [(1, "a", 2), (1, "b", 2)])
    assert chase_delta(db, [tgd]) == set()


def test_repair_report(schema):
    tgd = parse_tgd("(x, a, y) -> (x, b, y)")
    db = make_db(schema, [(1, "a", 2)])
    report = repair_report(db, [tgd])
    assert "1 missing edges" in report
    assert "b" in report


def test_chase_makes_dblp_constraint_hold(fig1):
    """Violate the DBLP constraint, then chase it clean."""
    constraint = fig1.schema.constraints[0]
    fig1.add_edge("Rogue", "p-in", "VLDB")
    assert not satisfies(fig1, constraint)
    repaired = chase(fig1, [constraint])
    assert satisfies(repaired, constraint)
    assert repaired.has_edge("Rogue", "r-a", "DataMining")
    assert repaired.has_edge("Rogue", "r-a", "Databases")


def test_chased_database_becomes_invertible(fig1):
    """After the chase, the DBLP2SIGM roundtrip succeeds again."""
    from repro.transform import dblp2sigm, verify_roundtrip

    fig1.add_edge("Rogue", "p-in", "VLDB")
    assert not verify_roundtrip(dblp2sigm(), fig1)
    repaired = chase(fig1, [fig1.schema.constraints[0]])
    assert verify_roundtrip(dblp2sigm(), repaired)


def test_biomed_indirect_closure_is_one_chase(biomed_bundle):
    """Dropping the indirect edges and chasing re-derives them exactly."""
    db = biomed_bundle.database
    stripped = db.copy()
    for edge in list(stripped.edges("ph-a-indirect")):
        stripped.remove_edge(*edge)
    for edge in list(stripped.edges("dd-ph-indirect")):
        stripped.remove_edge(*edge)
    rechased = chase(stripped, db.schema.constraints)
    assert rechased.edge_set() == db.edge_set()
