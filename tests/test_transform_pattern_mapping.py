"""Tests for the Theorem-2 constructive pattern mapping."""

import pytest

from repro.exceptions import TransformationError
from repro.graph import MatrixView, NodeIndexer
from repro.lang import CommutingMatrixEngine, parse_pattern
from repro.transform import (
    SchemaMapping,
    biomedt,
    copy_rule,
    dblp2sigm,
    label_substitutions,
    map_pattern,
    wsuc2alch,
)


def test_dblp_substitutions():
    subs = label_substitutions(dblp2sigm())
    assert str(subs["w"]) == "w"
    assert str(subs["p-in"]) == "p-in"
    assert str(subs["r-a"]) == "<<p-in.r-a>>"


def test_wsu_substitutions():
    subs = label_substitutions(wsuc2alch())
    assert str(subs["os"]) == "<<co.cs>>"


def test_biomed_substitutions():
    subs = label_substitutions(biomedt())
    assert str(subs["ph-a-indirect"]) == "<<is-parent-of-.ph-a-assoc>>"
    assert str(subs["dd-ph-indirect"]) == "<<dd-ph-assoc.is-parent-of>>"
    assert str(subs["targets"]) == "targets"


def test_map_pattern_structural():
    mapping = dblp2sigm()
    pattern = parse_pattern("r-a-.p-in.p-in-.r-a")
    mapped = map_pattern(mapping, pattern)
    assert str(mapped) == "<<r-a-.p-in->>.p-in.p-in-.<<p-in.r-a>>"


def test_map_pattern_commutes_with_operators():
    mapping = dblp2sigm()
    mapped = map_pattern(mapping, parse_pattern("[r-a]+<<p-in>>*"))
    assert str(mapped) == "[<<p-in.r-a>>]+<<p-in>>*"


def test_map_pattern_requires_inverse():
    from repro.datasets.schemas import DBLP_SCHEMA, SIGM_SCHEMA

    mapping = SchemaMapping(
        "noinv", DBLP_SCHEMA, SIGM_SCHEMA, [copy_rule("w")]
    )
    with pytest.raises(TransformationError):
        map_pattern(mapping, parse_pattern("w"))


def test_map_pattern_unknown_label():
    mapping = wsuc2alch()
    with pytest.raises(TransformationError):
        # Substitutions that do not cover the pattern's label must fail
        # loudly rather than silently keeping the source label.
        map_pattern(
            mapping,
            parse_pattern("t"),
            substitutions={"other": parse_pattern("t")},
        )


@pytest.mark.parametrize(
    "pattern_text",
    [
        "r-a",
        "r-a-",
        "r-a-.r-a",
        "p-in.p-in-",
        "r-a-.p-in.p-in-.r-a",
        "[r-a-]",
        "<<r-a-.p-in>>",
        "w.r-a",
    ],
)
def test_theorem2_counts_preserved_on_figure1(fig1, pattern_text):
    """|I^{u,v}_D(p)| == |I^{u,v}_{Sigma(D)}(M(p))| for preserved nodes."""
    mapping = dblp2sigm()
    pattern = parse_pattern(pattern_text)
    mapped = map_pattern(mapping, pattern)
    variant = mapping.apply(fig1)

    indexer = NodeIndexer(fig1.nodes())
    source_engine = CommutingMatrixEngine(MatrixView(fig1, indexer))
    target_engine = CommutingMatrixEngine(MatrixView(variant, indexer))
    source_matrix = source_engine.matrix(pattern)
    target_matrix = target_engine.matrix(mapped)
    assert abs(source_matrix - target_matrix).max() == 0


def test_theorem2_counts_preserved_on_generated_dblp(dblp_small):
    mapping = dblp2sigm()
    db = dblp_small.database
    pattern = parse_pattern("r-a-.p-in.p-in-.r-a")
    mapped = map_pattern(mapping, pattern)
    variant = mapping.apply(db)

    indexer = NodeIndexer(db.nodes())
    source = CommutingMatrixEngine(MatrixView(db, indexer)).matrix(pattern)
    target = CommutingMatrixEngine(MatrixView(variant, indexer)).matrix(mapped)
    assert abs(source - target).max() == 0


def test_theorem2_counts_preserved_on_biomed(biomed_bundle):
    mapping = biomedt()
    db = biomed_bundle.database
    pattern = parse_pattern("dd-ph-indirect.ph-pr-assoc.targets-")
    mapped = map_pattern(mapping, pattern)
    variant = mapping.apply(db)

    indexer = NodeIndexer(db.nodes())
    source = CommutingMatrixEngine(MatrixView(db, indexer)).matrix(pattern)
    target = CommutingMatrixEngine(MatrixView(variant, indexer)).matrix(mapped)
    assert abs(source - target).max() == 0


def test_substitutions_amortized():
    mapping = dblp2sigm()
    subs = label_substitutions(mapping)
    first = map_pattern(mapping, parse_pattern("r-a"), substitutions=subs)
    second = map_pattern(mapping, parse_pattern("r-a-"), substitutions=subs)
    assert str(first) == "<<p-in.r-a>>"
    assert str(second) == "<<r-a-.p-in->>"
