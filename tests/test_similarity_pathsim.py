"""Tests for PathSim over commuting matrices."""

import pytest

from repro.exceptions import AsymmetricPatternError
from repro.lang import CommutingMatrixEngine, parse_pattern
from repro.similarity import PathSim, is_symmetric_meta_path


def test_symmetric_meta_path_detection():
    assert is_symmetric_meta_path(parse_pattern("p-in.p-in-"))
    assert is_symmetric_meta_path(parse_pattern("r-a-.p-in.p-in-.r-a"))
    assert not is_symmetric_meta_path(parse_pattern("p-in.r-a"))
    assert not is_symmetric_meta_path(parse_pattern("[p-in]"))


def test_strict_symmetry_rejects_asymmetric(fig1):
    with pytest.raises(AsymmetricPatternError):
        PathSim(fig1, "p-in.r-a", strict_symmetry=True)


def test_figure1_example5_ordering(fig1):
    """PathSim with p1 finds Data Mining closer to Databases than to
    Software Engineering over Figure 1(a) — the paper's Example 5."""
    algorithm = PathSim(fig1, "r-a-.p-in.p-in-.r-a")
    ranking = algorithm.rank("DataMining")
    databases = ranking.score_of("Databases")
    software = ranking.score_of("SoftwareEngineering")
    assert databases > software


def test_self_similarity_excluded_from_answers(fig1):
    ranking = PathSim(fig1, "r-a-.p-in.p-in-.r-a").rank("DataMining")
    assert "DataMining" not in ranking.top()


def test_candidates_restricted_to_same_type(fig1):
    ranking = PathSim(fig1, "r-a-.p-in.p-in-.r-a").rank("DataMining")
    assert set(ranking.top()) <= {"Databases", "SoftwareEngineering"}


def test_scores_match_engine(fig1):
    pattern = parse_pattern("r-a-.p-in.p-in-.r-a")
    engine = CommutingMatrixEngine(fig1)
    algorithm = PathSim(fig1, pattern, engine=engine)
    scores = algorithm.scores("DataMining")
    for node, score in scores.items():
        assert score == pytest.approx(
            engine.pathsim_score(pattern, "DataMining", node)
        )


def test_accepts_pattern_ast(fig1):
    pattern = parse_pattern("r-a-.r-a")
    algorithm = PathSim(fig1, pattern)
    assert algorithm.pattern is pattern


def test_rejects_non_pattern(fig1):
    with pytest.raises(TypeError):
        PathSim(fig1, 42)


def test_shared_engine_reuses_matrices(fig1):
    engine = CommutingMatrixEngine(fig1)
    PathSim(fig1, "r-a-.r-a", engine=engine).rank("DataMining")
    size_after_first = engine.cache_size()
    PathSim(fig1, "r-a-.r-a", engine=engine).rank("Databases")
    assert engine.cache_size() == size_after_first


def test_pathsim_score_range(dblp_small):
    """PathSim scores for symmetric patterns lie in [0, 1]."""
    db = dblp_small.database
    algorithm = PathSim(db, "p-in-.r-a.r-a-.p-in")
    scores = algorithm.scores("proc:0")
    assert scores
    assert all(0.0 <= s <= 1.0 for s in scores.values())


def test_pathsim_symmetric_scores(dblp_small):
    db = dblp_small.database
    algorithm = PathSim(db, "p-in-.r-a.r-a-.p-in")
    ab = algorithm.scores("proc:0").get("proc:1")
    ba = algorithm.scores("proc:1").get("proc:0")
    assert ab == pytest.approx(ba)
