"""Unit tests for commuting matrices, cross-checked against enumeration."""

import pytest

from repro.exceptions import StarDivergenceError
from repro.graph import GraphDatabase, Schema
from repro.lang import (
    CommutingMatrixEngine,
    enumerate_instances,
    parse_pattern,
)


@pytest.fixture
def engine(tiny_db):
    return CommutingMatrixEngine(tiny_db)


def assert_matches_enumeration(db, engine, text):
    """The core Section-4.3 claim: M_p[u,v] == |I^{u,v}(p)|."""
    pattern = parse_pattern(text)
    instances = enumerate_instances(db, pattern)
    matrix = engine.matrix(pattern)
    indexer = engine.indexer
    for u in db.nodes():
        for v in db.nodes():
            assert matrix[
                indexer.index_of(u), indexer.index_of(v)
            ] == pytest.approx(instances.count(u, v)), (text, u, v)


@pytest.mark.parametrize(
    "text",
    [
        "eps",
        "a",
        "a-",
        "a.b",
        "b-.a-",
        "a+b",
        "a+a",
        "<<a.b>>",
        "[a]",
        "[a.b]",
        "a.[b]",
        "<<a>>.b",
        "b*",
        "(a+b).b",
        "[a-]",
        "<<a.b>>-",
    ],
)
def test_matrix_equals_enumeration(tiny_db, engine, text):
    assert_matches_enumeration(tiny_db, engine, text)


def test_matrix_cache(engine):
    pattern = parse_pattern("a.b")
    assert engine.matrix(pattern) is engine.matrix(pattern)


def test_star_divergence(engine):
    with pytest.raises(StarDivergenceError):
        engine.matrix(parse_pattern("c*"))


def test_count_accessor(tiny_db, engine):
    assert engine.count(parse_pattern("a.b"), 1, 4) == 2.0


def test_pathsim_score_formula(tiny_db, engine):
    pattern = parse_pattern("a.a-")
    matrix = engine.matrix(pattern)
    indexer = engine.indexer
    u, v = 1, 2
    expected = (
        2.0
        * matrix[indexer.index_of(u), indexer.index_of(v)]
        / (
            matrix[indexer.index_of(u), indexer.index_of(u)]
            + matrix[indexer.index_of(v), indexer.index_of(v)]
        )
    )
    assert engine.pathsim_score(pattern, u, v) == pytest.approx(expected)


def test_pathsim_score_zero_denominator(tiny_db, engine):
    # Node 5 has no a-edges at all.
    assert engine.pathsim_score(parse_pattern("a.a-"), 5, 5) == 0.0


def test_pathsim_self_similarity_is_one(tiny_db, engine):
    pattern = parse_pattern("a.a-")
    assert engine.pathsim_score(pattern, 1, 1) == pytest.approx(1.0)


def test_pathsim_scores_vector_matches_scalar(tiny_db, engine):
    pattern = parse_pattern("a.a-")
    vector = engine.pathsim_scores_from(pattern, 1)
    for node in tiny_db.nodes():
        assert vector[engine.indexer.index_of(node)] == pytest.approx(
            engine.pathsim_score(pattern, 1, node)
        )


def test_materialize_simple_patterns(tiny_db):
    engine = CommutingMatrixEngine(tiny_db)
    cached = engine.materialize_simple_patterns(max_length=2, labels=["a", "b"])
    # 4 steps (a, a-, b, b-): 4 of length 1 + 16 of length 2 = 20 patterns,
    # plus intermediate sub-matrices; at least the 20 are present.
    assert cached >= 20
    assert engine.cache_size() == cached


def test_type_error_on_string(engine):
    with pytest.raises(TypeError):
        engine.matrix("a")


def test_union_deduplicates_like_paper(tiny_db, engine):
    from repro.lang.ast import Label, Union

    single = engine.matrix(Label("a"))
    doubled = engine.matrix(Union([Label("a"), Label("a")]))
    assert (single != doubled).nnz == 0


def test_shared_indexer_alignment(tiny_db):
    from repro.graph import MatrixView

    view = MatrixView(tiny_db)
    clone_view = MatrixView(tiny_db.copy(), indexer=view.indexer)
    engine_a = CommutingMatrixEngine(view)
    engine_b = CommutingMatrixEngine(clone_view)
    pattern = parse_pattern("a.b")
    assert (
        engine_a.matrix(pattern) != engine_b.matrix(pattern)
    ).nnz == 0


# ----------------------------------------------------------------------
# LRU recency and materialization under a cache cap
# ----------------------------------------------------------------------
def test_column_norm_hit_refreshes_matrix_recency(tiny_db):
    # A norms hit must also refresh the pattern's *matrix* LRU slot —
    # otherwise a hot pattern's matrix is evicted while its norms
    # survive, and the next score pays a recompute.
    engine = CommutingMatrixEngine(tiny_db, max_cached_matrices=2)
    pa, pb, pc = (parse_pattern(text) for text in ("a", "b", "c"))
    engine.matrix(pa)
    engine.column_norms(pa)
    engine.matrix(pb)
    engine.column_norms(pa)  # hit: refreshes pa's matrix recency
    engine.matrix(pc)  # evicts pb (the true LRU), not pa
    misses = engine.cache_info()["misses"]
    engine.matrix(pa)
    assert engine.cache_info()["misses"] == misses


def test_materialize_over_cache_cap_raises(tiny_db):
    from repro.exceptions import EvaluationError

    # 4 steps (a, a-, b, b-): 4 + 16 = 20 patterns will not fit in 3
    # slots; silently thrashing the LRU and returning a capped count
    # would be misleading.
    engine = CommutingMatrixEngine(tiny_db, max_cached_matrices=3)
    with pytest.raises(EvaluationError):
        engine.materialize_simple_patterns(max_length=2, labels=["a", "b"])


def test_materialize_under_cache_cap_succeeds(tiny_db):
    engine = CommutingMatrixEngine(tiny_db, max_cached_matrices=100)
    cached = engine.materialize_simple_patterns(
        max_length=2, labels=["a", "b"]
    )
    assert cached >= 20


def test_evict_drops_orphaned_derived_state_only(tiny_db):
    # Regression: the old eviction trimmed the norm/diagonal stores by
    # their *own* LRU order whenever they outgrew the matrix cache,
    # which could pop a live matrix's vectors while keeping an orphan.
    # The rewrite drops exactly the keys with no cached matrix.
    engine = CommutingMatrixEngine(tiny_db)
    engine.matrix(parse_pattern("a"))
    engine.column_norms(parse_pattern("a"))
    engine.diagonal(parse_pattern("a"))
    engine.matrix(parse_pattern("b"))
    engine.column_norms(parse_pattern("b"))
    pa = engine.compile(parse_pattern("a"))
    pb = engine.compile(parse_pattern("b"))
    ghost = engine.compile(parse_pattern("c"))
    with engine._lock:
        # Simulate an orphan slipping in (older snapshot / bug): a norm
        # vector with no matrix, *older* in the store than pb's.
        engine._column_norms[ghost] = engine._column_norms[pb]
        engine._column_norms.move_to_end(pb)
        engine._evict()
        assert ghost not in engine._column_norms
        assert pa in engine._column_norms and pb in engine._column_norms
        assert pa in engine._diagonals
