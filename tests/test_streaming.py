"""Standing-query subscriptions: the push-based incremental top-k layer.

Covers the maintenance ladder (pruned / rescored-certificate /
fallback), the notification contract (events only when the ranking
actually changes, callbacks off-thread), and the bitwise-parity claim:
a maintained ranking always equals a fresh ``prepared.run``.
"""

import threading

import pytest

from repro.api import SimilarityService, SimilaritySession
from repro.datasets import generate_dblp
from repro.exceptions import EvaluationError, UnknownNodeError
from repro.streaming import DeltaReport, RankingEvent, diff_rankings

PATTERN = "p-in.p-in-"  # paper-to-paper via shared proceedings
NODE = "paper:0"
TOP_K = 5


def _tiny_dblp():
    return generate_dblp(
        num_areas=3, num_procs=6, num_papers=36, num_authors=20, seed=0
    ).database


@pytest.fixture
def service():
    return SimilarityService(_tiny_dblp())


@pytest.fixture
def watched(service):
    """A live pathsim subscription plus its collected events."""
    prepared = service.prepare(
        algorithm="pathsim", pattern=PATTERN, top_k=TOP_K
    )
    events = []
    subscription = service.subscribe(prepared, NODE, events.append)
    service.subscriptions.flush()
    return service, prepared, subscription, events


def _fresh_items(service, node=NODE):
    session = SimilaritySession(service.database)
    prepared = session.prepare(
        algorithm="pathsim", pattern=PATTERN, top_k=TOP_K
    )
    return prepared.run(node).items()


def _new_edge(database, label, source_type, target_type, exclude=()):
    """A (source, label, target) edge absent from ``database``."""
    for source in sorted(database.nodes_of_type(source_type)):
        if source in exclude:
            continue
        for target in sorted(database.nodes_of_type(target_type)):
            if target not in exclude and not database.has_edge(
                source, label, target
            ):
                return (source, label, target)
    raise AssertionError("fixture saturated; no absent edge found")


# ----------------------------------------------------------------------
# diff_rankings
# ----------------------------------------------------------------------


def test_diff_rankings_identical_is_empty():
    items = [("a", 2.0), ("b", 1.0)]
    assert diff_rankings(items, items) == ([], [], [])


def test_diff_rankings_entered_and_left():
    old = [("a", 2.0), ("b", 1.0)]
    new = [("x", 3.0), ("a", 2.0)]
    entered, left, reordered = diff_rankings(old, new)
    assert entered == ["x"]
    assert left == ["b"]
    # "a" slid down only because "x" entered above it: not a reorder.
    assert reordered == []


def test_diff_rankings_survivor_swap_is_reordered():
    old = [("a", 2.0), ("b", 1.0)]
    new = [("b", 2.0), ("a", 1.0)]
    entered, left, reordered = diff_rankings(old, new)
    assert (entered, left) == ([], [])
    assert reordered == ["b", "a"]


# ----------------------------------------------------------------------
# DeltaReport.touches
# ----------------------------------------------------------------------


def test_touches_wildcard_footprint_matches_everything():
    report = DeltaReport(labels=frozenset({"w"}), grew=False)
    assert report.touches(None)


def test_touches_unknown_report_matches_everything():
    assert DeltaReport.unknown().touches((frozenset({"p-in"}), False))


def test_touches_label_intersection():
    report = DeltaReport(labels=frozenset({"p-in"}), grew=False)
    assert report.touches((frozenset({"p-in", "r-a"}), False))
    assert not report.touches((frozenset({"w"}), False))


def test_touches_growth_sensitivity():
    grew = DeltaReport(labels=frozenset({"w"}), grew=True)
    assert grew.touches((frozenset({"p-in"}), True))
    assert not grew.touches((frozenset({"p-in"}), False))


def test_ranking_event_to_dict_shape():
    event = RankingEvent(
        "update", 3, [("a", 2.0), ("b", 1.0)], ["a"], ["c"], []
    )
    assert event.to_dict() == {
        "type": "update",
        "version": 3,
        "ranking": [["a", 2.0], ["b", 1.0]],
        "entered": ["a"],
        "left": ["c"],
        "reordered": [],
    }


# ----------------------------------------------------------------------
# Subscription lifecycle
# ----------------------------------------------------------------------


def test_subscribe_delivers_snapshot_event(watched):
    service, prepared, subscription, events = watched
    assert [event.type for event in events] == ["snapshot"]
    snapshot = events[0]
    assert snapshot.version == service.version
    assert snapshot.items == prepared.run(NODE).items()
    assert snapshot.entered == [node for node, _ in snapshot.items]
    assert (snapshot.left, snapshot.reordered) == ([], [])
    assert subscription.items() == snapshot.items
    assert subscription.active
    assert subscription.version == service.version
    assert subscription.top_k == TOP_K


def test_subscribe_unknown_node_raises_synchronously(service):
    prepared = service.prepare(algorithm="pathsim", pattern=PATTERN)
    with pytest.raises(UnknownNodeError):
        service.subscribe(prepared, "paper:no-such", lambda event: None)
    assert service.subscription_stats["active"] == 0


def test_subscribe_rejects_foreign_prepared_handles(service):
    session = SimilaritySession(service.database)
    foreign = session.prepare(algorithm="pathsim", pattern=PATTERN)
    with pytest.raises(EvaluationError):
        service.subscribe(foreign, NODE, lambda event: None)


def test_subscribe_defaults_top_k_from_prepared(service):
    prepared = service.prepare(
        algorithm="pathsim", pattern=PATTERN, top_k=3
    )
    subscription = service.subscribe(prepared, NODE)
    assert subscription.top_k == 3
    assert len(subscription.items()) <= 3


def test_cancel_detaches_the_subscription(watched):
    service, prepared, subscription, events = watched
    before = subscription.items()
    subscription.cancel()
    assert not subscription.active
    assert service.subscription_stats["active"] == 0
    # A ranking-moving delta no longer maintains or notifies.
    member = before[0][0]
    edge = next(
        (s, l, t) for (s, l, t) in service.database.edges("p-in")
        if s == member
    )
    service.apply(edges_removed=[edge], incremental=True)
    service.subscriptions.flush()
    assert subscription.items() == before
    assert [event.type for event in events] == ["snapshot"]
    subscription.cancel()  # idempotent


# ----------------------------------------------------------------------
# The maintenance ladder
# ----------------------------------------------------------------------


def test_footprint_disjoint_delta_is_pruned(watched):
    service, prepared, subscription, events = watched
    assert prepared.footprint() == (frozenset({"p-in"}), False)
    edge = _new_edge(service.database, "r-a", "paper", "area")
    service.apply(edges_added=[edge], incremental=True)
    service.subscriptions.flush()
    stats = subscription.stats()
    assert stats["pruned"] == 1
    assert (stats["rescored"], stats["fallbacks"], stats["notified"]) == (
        0, 0, 0,
    )
    assert [event.type for event in events] == ["snapshot"]
    assert subscription.version == service.version
    assert subscription.items() == _fresh_items(service)


def test_relevant_delta_certified_by_targeted_rescore(watched):
    service, prepared, subscription, events = watched
    members = {node for node, _ in subscription.items()}
    # A p-in edge in a different proceedings: label-relevant, but the
    # targeted rescore proves no member moved and no outsider enters.
    edge = _new_edge(
        service.database, "p-in", "paper", "proc",
        exclude=members | {NODE, "proc:2"},
    )
    service.apply(edges_added=[edge], incremental=True)
    service.subscriptions.flush()
    stats = subscription.stats()
    assert stats["rescored"] == 1
    assert (stats["fallbacks"], stats["notified"]) == (0, 0)
    assert [event.type for event in events] == ["snapshot"]
    assert subscription.items() == _fresh_items(service)


def test_member_edge_removal_falls_back_and_notifies(watched):
    service, prepared, subscription, events = watched
    before = subscription.items()
    member = before[0][0]
    edge = next(
        (s, l, t) for (s, l, t) in service.database.edges("p-in")
        if s == member
    )
    service.apply(edges_removed=[edge], incremental=True)
    service.subscriptions.flush()
    stats = subscription.stats()
    assert stats["fallbacks"] == 1
    assert stats["notified"] == 1
    assert [event.type for event in events] == ["snapshot", "update"]
    update = events[1]
    assert update.version == service.version
    assert member in update.left
    assert update.items == subscription.items()
    assert subscription.items() == _fresh_items(service)
    assert subscription.items() != before


def test_full_rebuild_swap_falls_back(watched):
    service, prepared, subscription, events = watched
    service.apply(edges_added=[], incremental=False)
    service.subscriptions.flush()
    stats = subscription.stats()
    assert stats["fallbacks"] == 1
    # An identical ranking after the swap must not notify.
    assert stats["notified"] == 0
    assert [event.type for event in events] == ["snapshot"]
    assert subscription.items() == _fresh_items(service)


def test_poll_applies_one_maintenance_step(watched):
    service, prepared, subscription, events = watched
    subscription.poll(DeltaReport(labels=frozenset({"w"}), grew=False))
    assert subscription.stats()["pruned"] == 1
    subscription.poll()  # unknown report: full fallback re-rank
    stats = subscription.stats()
    assert stats["fallbacks"] == 1
    assert stats["notified"] == 0  # nothing changed


# ----------------------------------------------------------------------
# Notifier thread
# ----------------------------------------------------------------------


def test_callbacks_run_off_the_publishing_thread(service):
    prepared = service.prepare(
        algorithm="pathsim", pattern=PATTERN, top_k=TOP_K
    )
    threads = []
    service.subscribe(
        prepared, NODE, lambda event: threads.append(
            threading.current_thread()
        )
    )
    service.subscriptions.flush()
    assert len(threads) == 1
    assert threads[0] is not threading.main_thread()
    assert threads[0].name == "repro-subscription-notifier"


def test_callback_exception_is_counted_not_fatal(service):
    prepared = service.prepare(
        algorithm="pathsim", pattern=PATTERN, top_k=TOP_K
    )
    received = []

    def broken(event):
        raise RuntimeError("subscriber bug")

    service.subscribe(prepared, NODE, broken)
    healthy = service.subscribe(prepared, "paper:1", received.append)
    service.subscriptions.flush()
    assert service.subscription_stats["callback_errors"] == 1
    # The healthy subscriber still got its snapshot.
    assert [event.type for event in received] == ["snapshot"]
    assert healthy.active


def test_manager_close_stops_everything(service):
    prepared = service.prepare(
        algorithm="pathsim", pattern=PATTERN, top_k=TOP_K
    )
    subscription = service.subscribe(prepared, NODE, lambda event: None)
    service.subscriptions.flush()
    service.subscriptions.close()
    assert not subscription.active
    assert service.subscription_stats["active"] == 0


def test_subscription_stats_aggregates(watched):
    service, prepared, subscription, events = watched
    stats = service.subscription_stats
    assert stats["active"] == 1
    assert set(stats) == {
        "active", "notified", "pruned", "rescored", "fallbacks",
        "callback_errors",
    }
