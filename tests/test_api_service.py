"""Tests for SimilarityService: live updates, concurrency, freshness."""

import gc
import threading

import pytest

from repro.api import SimilarityService, SimilaritySession
from repro.datasets import figure1_dblp
from repro.exceptions import (
    EvaluationError,
    NodeTypeConflictError,
    UnknownEdgeError,
)
from repro.lang import parse_pattern

PATTERN = "r-a-.p-in.p-in-.r-a"
QUERIES = ("DataMining", "Databases", "SoftwareEngineering")

# Adding this edge gives SoftwareEngineering a VLDB paper, which
# reshapes every area-to-area ranking under PATTERN.
DELTA_EDGE = ("CodeMining", "p-in", "VLDB")


def _expected(database, top_k=10):
    session = SimilaritySession(database)
    prepared = session.prepare(
        algorithm="relsim", pattern=PATTERN, top_k=top_k
    )
    return {query: prepared.run(query).items() for query in QUERIES}


# ----------------------------------------------------------------------
# Basics
# ----------------------------------------------------------------------
def test_service_versions_and_snapshot_copy(fig1):
    service = SimilarityService(fig1)
    assert service.version == 1
    assert service.database is not fig1
    assert service.database.same_content(fig1)
    # Mutating the caller's database never touches the snapshot.
    fig1.add_edge("LeakMining", "p-in", "SIGKDD")
    assert not service.database.has_node("LeakMining")


def test_service_prepare_and_run(fig1):
    service = SimilarityService(fig1)
    prepared = service.prepare(
        algorithm="relsim", pattern=PATTERN, top_k=10
    )
    for query, items in _expected(fig1).items():
        assert prepared.run(query).items() == items
    assert service.prepared_queries() == [prepared]


def test_service_query_and_rank_many_passthrough(fig1):
    service = SimilarityService(fig1)
    fluent = service.query("DataMining").using(
        "relsim", pattern=PATTERN
    ).top(5)
    batch = service.rank_many(
        ["DataMining"], algorithm="relsim", pattern=PATTERN, top_k=5
    )
    assert fluent.items() == batch["DataMining"].items()


def test_service_rejects_instance_prepare(fig1):
    service = SimilarityService(fig1)
    instance = service.session.algorithm("relsim", pattern=PATTERN)
    with pytest.raises(EvaluationError):
        service.prepare(algorithm=instance)


# ----------------------------------------------------------------------
# Live updates
# ----------------------------------------------------------------------
def test_apply_rebinds_prepared_queries(fig1):
    service = SimilarityService(fig1)
    prepared = service.prepare(
        algorithm="relsim", pattern=PATTERN, top_k=10
    )
    before = {q: prepared.run(q).items() for q in QUERIES}

    version = service.apply(edges_added=[DELTA_EDGE])
    assert version == 2
    assert service.version == 2
    assert service.database.has_edge(*DELTA_EDGE)

    mutated = fig1.copy()
    mutated.add_edge(*DELTA_EDGE)
    expected = _expected(mutated)
    after = {q: prepared.run(q).items() for q in QUERIES}
    assert after == expected
    assert after != before  # the delta was chosen to change rankings


def test_apply_removal_and_unknown_edge(fig1):
    service = SimilarityService(fig1)
    edge = ("CodeMining", "p-in", "SIGKDD")
    service.apply(edges_removed=[edge])
    assert not service.database.has_edge(*edge)
    with pytest.raises(UnknownEdgeError):
        service.apply(edges_removed=[("ghost", "r-a", "nowhere")])
    # A failed apply must not have swapped or bumped the version.
    assert service.version == 2


def test_swap_whole_database(fig1):
    service = SimilarityService(fig1)
    prepared = service.prepare(
        algorithm="relsim", pattern=PATTERN, top_k=5
    )
    replacement = figure1_dblp()
    replacement.add_edge("ExtraMining", "r-a", "SoftwareEngineering")
    replacement.add_edge("ExtraMining", "p-in", "VLDB")
    version = service.swap(replacement)
    assert version == 2
    assert service.database.has_node("ExtraMining")
    # The service copied: mutating the caller's replacement afterwards
    # does not leak into the serving snapshot.
    replacement.add_edge("LaterMining", "p-in", "VLDB")
    assert not service.database.has_node("LaterMining")
    expected = _expected(service.database, top_k=5)
    for query, items in expected.items():
        assert prepared.run(query).items() == items


def test_apply_background_thread(fig1):
    service = SimilarityService(fig1)
    thread = service.apply(edges_added=[DELTA_EDGE], wait=False)
    assert isinstance(thread, threading.Thread)
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert service.version == 2
    assert service.database.has_edge(*DELTA_EDGE)


def test_apply_background_failure_is_observable(fig1):
    service = SimilarityService(fig1)
    thread = service.apply(
        edges_removed=[("ghost", "r-a", "nowhere")], wait=False
    )
    thread.join(timeout=30)
    assert isinstance(thread.error, UnknownEdgeError)
    assert thread.version is None
    assert service.version == 1  # a failed delta never swaps
    ok = service.apply(edges_added=[DELTA_EDGE], wait=False)
    ok.join(timeout=30)
    assert ok.error is None
    assert ok.version == 2


def test_transient_handles_are_pruned_on_prepare(fig1):
    service = SimilarityService(fig1)
    for _ in range(10):
        transient = service.prepare(algorithm="relsim", pattern=PATTERN)
        transient.run("DataMining")
        del transient
    kept = service.prepare(algorithm="relsim", pattern=PATTERN)
    # Dead weakrefs are pruned as new handles register, not only on
    # swap: a read-mostly service must not grow the list unboundedly.
    assert len(service._handles) == 1
    assert service.prepared_queries() == [kept]


def test_versions_increase_monotonically(fig1):
    service = SimilarityService(fig1)
    versions = [
        service.apply(
            edges_added=[("FreshMining{}".format(i), "p-in", "SIGKDD")]
        )
        for i in range(4)
    ]
    assert versions == [2, 3, 4, 5]


def test_dropped_handles_are_not_rebound(fig1):
    service = SimilarityService(fig1)
    keep = service.prepare(algorithm="relsim", pattern=PATTERN)
    drop = service.prepare(algorithm="relsim", pattern="r-a-.r-a")
    assert len(service.prepared_queries()) == 2
    del drop
    service.apply(edges_added=[DELTA_EDGE])
    assert service.prepared_queries() == [keep]


def test_incremental_apply_routes_and_stats(fig1):
    service = SimilarityService(fig1)
    prepared = service.prepare(
        algorithm="relsim", pattern=PATTERN, top_k=10
    )
    before = {q: prepared.run(q).items() for q in QUERIES}
    version = service.apply(edges_added=[DELTA_EDGE])  # small: incremental
    assert version == 2
    stats = service.delta_stats
    assert stats["last_path"] == "incremental"
    assert stats["incremental_applies"] == 1
    mutated = fig1.copy()
    mutated.add_edge(*DELTA_EDGE)
    after = {q: prepared.run(q).items() for q in QUERIES}
    assert after == _expected(mutated)
    assert after != before
    # Forcing the rebuild path produces the same state.
    service.apply(edges_removed=[DELTA_EDGE], incremental=False)
    assert service.delta_stats["last_path"] == "rebuild"
    assert {q: prepared.run(q).items() for q in QUERIES} == _expected(fig1)


def test_apply_nodes_added_and_failed_incremental_never_swaps(fig1):
    service = SimilarityService(fig1)
    version = service.apply(
        nodes_added=[("FreshArea", "area")], incremental=True
    )
    assert version == 2
    assert service.database.node_type("FreshArea") == "area"
    with pytest.raises(UnknownEdgeError):
        service.apply(
            edges_removed=[("ghost", "r-a", "nowhere")], incremental=True
        )
    assert service.version == 2  # failed incremental delta never swaps


def test_prepared_handles_survive_apply_cycles_with_gc(fig1):
    # Weakref rebinding across many apply() cycles interleaved with
    # explicit collections: live handles must keep being refreshed,
    # dropped handles must not be resurrected or leak registry slots.
    service = SimilarityService(fig1)
    keep_a = service.prepare(algorithm="relsim", pattern=PATTERN, top_k=10)
    keep_b = service.prepare(
        algorithm="relsim", pattern="r-a-.r-a", top_k=10
    )
    transient = service.prepare(algorithm="pathsim", pattern=PATTERN)
    for cycle in range(6):
        if cycle == 2:
            del transient
        service.apply(
            edges_added=[DELTA_EDGE]
            if cycle % 2 == 0
            else [],
            edges_removed=[] if cycle % 2 == 0 else [DELTA_EDGE],
            incremental=cycle % 3 != 2,
        )
        live = None  # drop the previous cycle's references first
        gc.collect()
        live = service.prepared_queries()
        if cycle >= 2:
            assert set(live) == {keep_a, keep_b}
        # Every surviving handle serves the *current* snapshot.  (A
        # plain computed list: assertion-rewriting temporaries inside
        # the loop would otherwise pin the handles across iterations.)
        stale = [h for h in live if h.session is not service.session]
        assert not stale
        live = None
    gc.collect()
    assert len(service._handles) == 2
    mutated = fig1.copy()  # 6 cycles net out to the original database
    assert {q: keep_a.run(q).items() for q in QUERIES} == _expected(mutated)


def test_version_strictly_monotone_under_concurrent_apply_and_query(fig1):
    service = SimilarityService(fig1)
    prepared = service.prepare(
        algorithm="relsim", pattern=PATTERN, top_k=10
    )
    applied_versions = []
    observed = {i: [] for i in range(4)}
    failures = []
    stop = threading.Event()
    barrier = threading.Barrier(5)

    def mutate():
        try:
            barrier.wait(timeout=30)
            for round_ in range(8):
                applied_versions.append(
                    service.apply(edges_added=[DELTA_EDGE])
                )
                applied_versions.append(
                    service.apply(edges_removed=[DELTA_EDGE])
                )
        except Exception as error:  # pragma: no cover - surfaced below
            failures.append(error)
        finally:
            stop.set()

    def query(slot):
        try:
            barrier.wait(timeout=30)
            while not stop.is_set():
                observed[slot].append(service.version)
                prepared.run("DataMining")
        except Exception as error:  # pragma: no cover - surfaced below
            failures.append(error)

    threads = [threading.Thread(target=mutate)] + [
        threading.Thread(target=query, args=(i,)) for i in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not failures, failures[:3]
    # Applies return strictly increasing versions...
    assert applied_versions == list(range(2, 18))
    # ...and no reader ever observes the version moving backwards.
    for slot, versions in observed.items():
        assert versions == sorted(versions), "reader {} saw {}".format(
            slot, versions[:20]
        )


def test_add_node_type_conflict_for_programmatic_mutation(fig1):
    # add_node conflicts matter once services mutate graphs
    # programmatically: re-typing must fail loudly, not silently.
    database = fig1.copy()
    database.add_node("typed", "proc")
    database.add_node("typed", "proc")  # same type: idempotent
    database.add_node("typed")          # None: no-op
    with pytest.raises(NodeTypeConflictError):
        database.add_node("typed", "paper")


# ----------------------------------------------------------------------
# Concurrency: the 8-thread hammer
# ----------------------------------------------------------------------
def test_eight_thread_hammer_results_identical(dblp_small):
    database = dblp_small.database
    session = SimilaritySession(database)
    prepared = session.prepare(
        algorithm="relsim", pattern=PATTERN, top_k=10
    )
    queries = list(database.nodes_of_type("area"))
    reference = session.algorithm("relsim", pattern=PATTERN)
    expected = {
        query: reference.rank(query, top_k=10).items() for query in queries
    }

    rounds = 5
    failures = []
    barrier = threading.Barrier(8)

    def hammer(offset):
        try:
            barrier.wait(timeout=30)
            for round_ in range(rounds):
                for query in queries[offset::2]:
                    observed = prepared.run(query).items()
                    if observed != expected[query]:
                        failures.append((query, round_, offset))
        except Exception as error:  # pragma: no cover - surfaced below
            failures.append(error)

    threads = [
        threading.Thread(target=hammer, args=(i % 2,)) for i in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not failures, failures[:3]


def test_eight_thread_cold_engine_shares_one_matrix(dblp_small):
    # Double-checked publication: concurrent cold computes of the same
    # pattern must converge on one cached matrix object.
    session = SimilaritySession(dblp_small.database)
    pattern = parse_pattern(PATTERN)
    results = []
    failures = []
    barrier = threading.Barrier(8)

    def compute():
        try:
            barrier.wait(timeout=30)
            results.append(session.engine.matrix(pattern))
        except Exception as error:  # pragma: no cover - surfaced below
            failures.append(error)

    threads = [threading.Thread(target=compute) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not failures, failures
    assert len(results) == 8
    assert all(matrix is results[0] for matrix in results)


# ----------------------------------------------------------------------
# Freshness: no torn snapshots during swap
# ----------------------------------------------------------------------
def test_queries_during_swap_never_see_torn_snapshot(fig1):
    service = SimilarityService(fig1)
    prepared = service.prepare(
        algorithm="relsim", pattern=PATTERN, top_k=10
    )
    old_expected = {q: prepared.run(q).items() for q in QUERIES}

    mutated = fig1.copy()
    mutated.add_edge(*DELTA_EDGE)
    new_expected = _expected(mutated)
    assert new_expected != old_expected

    stop = threading.Event()
    anomalies = []

    def hammer():
        while not stop.is_set():
            for query in QUERIES:
                observed = prepared.run(query).items()
                if (
                    observed != old_expected[query]
                    and observed != new_expected[query]
                ):
                    anomalies.append((query, observed))

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(5):
            service.apply(edges_added=[DELTA_EDGE])
            assert {
                q: prepared.run(q).items() for q in QUERIES
            } == new_expected
            service.apply(edges_removed=[DELTA_EDGE])
            assert {
                q: prepared.run(q).items() for q in QUERIES
            } == old_expected
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
    assert not anomalies, anomalies[:3]
    assert service.version == 11


# ----------------------------------------------------------------------
# Serving integration: session adoption, checkpoints, last_error
# ----------------------------------------------------------------------
def test_service_adopts_existing_session(fig1):
    session = SimilaritySession(fig1)
    warm = session.prepare(algorithm="relsim", pattern=PATTERN, top_k=10)
    expected = {q: warm.run(q).items() for q in QUERIES}
    service = SimilarityService(session=session)
    assert service.version == 1
    assert service.session is session  # adopted, not copied
    prepared = service.prepare(algorithm="relsim", pattern=PATTERN, top_k=10)
    assert {q: prepared.run(q).items() for q in QUERIES} == expected


def test_service_constructor_validation(fig1):
    with pytest.raises(EvaluationError, match="not both"):
        SimilarityService(fig1, session=SimilaritySession(fig1))
    with pytest.raises(EvaluationError, match="database= or session="):
        SimilarityService()


def test_checkpoint_fires_after_apply_and_swap(fig1):
    calls = []
    service = SimilarityService(
        fig1,
        checkpoint=lambda svc, version: calls.append(
            (version, svc.version, svc.database.has_edge(*DELTA_EDGE))
        ),
    )
    service.apply(edges_added=[DELTA_EDGE])
    replacement = figure1_dblp()
    service.swap(replacement)
    # Each checkpoint saw the *published* post-mutation state.
    assert calls == [(2, 2, True), (3, 3, False)]


def test_checkpoint_failure_is_recorded_not_raised(fig1):
    def explode(service_, version):
        raise OSError("disk full")

    service = SimilarityService(fig1, checkpoint=explode)
    version = service.apply(edges_added=[DELTA_EDGE])  # must not raise
    assert version == 2
    assert service.version == 2
    assert service.database.has_edge(*DELTA_EDGE)
    record = service.last_error
    assert record["operation"] == "checkpoint"
    assert "disk full" in record["message"]
    assert isinstance(record["error"], OSError)
    assert record["version"] == 2
    service.clear_last_error()
    assert service.last_error is None


def test_background_failure_sets_sticky_last_error(fig1):
    service = SimilarityService(fig1)
    assert service.last_error is None
    thread = service.apply(
        edges_removed=[("ghost", "r-a", "nowhere")], wait=False
    )
    thread.join(timeout=30)
    record = service.last_error
    assert record["operation"] == "apply"
    assert "ghost" in record["message"]
    assert isinstance(record["error"], UnknownEdgeError)
    # Sticky: a later success does not silently erase the evidence.
    service.apply(edges_added=[DELTA_EDGE])
    assert service.last_error["operation"] == "apply"
    service.clear_last_error()
    assert service.last_error is None
