"""Tests for the SimilaritySession facade, registry, and batch path."""

import pytest

from repro.api import (
    SimilaritySession,
    algorithm_class,
    algorithm_parameters,
    available_algorithms,
    register_algorithm,
    unregister_algorithm,
)
from repro.core import RelSim
from repro.eval import RobustnessExperiment, time_queries
from repro.exceptions import EvaluationError, RegistryError
from repro.lang import parse_pattern
from repro.similarity import PathSim, SimilarityAlgorithm
from repro.transform import dblp2sigm, map_pattern

PATTERN = "r-a-.p-in.p-in-.r-a"

SEED_ALGORITHMS = (
    "relsim",
    "pathsim",
    "hetesim",
    "rwr",
    "simrank",
    "pattern-rwr",
    "pattern-simrank",
    "common-neighbors",
    "katz",
)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_all_seed_algorithms_registered():
    names = available_algorithms()
    for name in SEED_ALGORITHMS:
        assert name in names


def test_algorithm_class_resolves_case_insensitively():
    assert algorithm_class("relsim") is RelSim
    assert algorithm_class("RelSim") is RelSim
    assert algorithm_class("PATHSIM") is PathSim


def test_unknown_algorithm_errors():
    with pytest.raises(RegistryError):
        algorithm_class("no-such-algorithm")


def test_register_duplicate_errors_without_replace():
    with pytest.raises(RegistryError):
        register_algorithm("relsim", PathSim)
    # replace=True is the explicit override; restore right away.
    register_algorithm("relsim", PathSim, replace=True)
    try:
        assert algorithm_class("relsim") is PathSim
    finally:
        register_algorithm("relsim", RelSim, replace=True)


def test_register_rejects_non_algorithm_class():
    with pytest.raises(RegistryError):
        register_algorithm("not-an-algorithm", dict)
    with pytest.raises(RegistryError):
        register_algorithm("", RelSim)


def test_register_and_unregister_custom_algorithm(fig1):
    class Constant(SimilarityAlgorithm):
        name = "Constant"

        def scores(self, query):
            return {node: 1.0 for node in self.candidates(query)}

    register_algorithm("constant", Constant)
    try:
        session = SimilaritySession(fig1)
        ranking = session.query("DataMining").using("constant").rank()
        assert len(ranking) > 0
    finally:
        unregister_algorithm("constant")
    with pytest.raises(RegistryError):
        algorithm_class("constant")
    with pytest.raises(RegistryError):
        unregister_algorithm("constant")


def test_algorithm_parameters_lists_constructor_keywords():
    parameters = algorithm_parameters("relsim")
    assert "patterns" in parameters
    assert "engine" in parameters
    assert "self" not in parameters


# ----------------------------------------------------------------------
# Session: engine sharing
# ----------------------------------------------------------------------
def test_session_algorithms_share_engine_and_matrices(fig1):
    session = SimilaritySession(fig1)
    relsim = session.algorithm("relsim", pattern=PATTERN)
    pathsim = session.algorithm("pathsim", pattern=PATTERN)
    assert relsim.engine is session.engine
    assert pathsim.engine is session.engine
    pattern = parse_pattern(PATTERN)
    # The acceptance identity: the very same materialized matrix object.
    assert relsim.engine.matrix(pattern) is pathsim.engine.matrix(pattern)


def test_session_view_algorithms_share_indexer(fig1):
    session = SimilaritySession(fig1)
    rwr = session.algorithm("rwr")
    simrank = session.algorithm("simrank")
    assert rwr._view is session.view
    assert simrank._view is session.view


def test_session_matrices_are_not_recomputed_across_algorithms(fig1):
    session = SimilaritySession(fig1)
    session.algorithm("relsim", pattern=PATTERN).rank("DataMining")
    misses_after_first = session.cache_info()["misses"]
    session.algorithm("pathsim", pattern=PATTERN).rank("DataMining")
    assert session.cache_info()["misses"] == misses_after_first


def test_session_pattern_patterns_normalization(fig1):
    session = SimilaritySession(fig1)
    # pathsim declares `pattern`; a singleton patterns= list is accepted.
    one = session.algorithm("pathsim", patterns=[PATTERN])
    assert str(one.pattern) == PATTERN
    with pytest.raises(EvaluationError):
        session.algorithm("pathsim", patterns=[PATTERN, "r-a-.r-a"])
    with pytest.raises(EvaluationError):
        session.algorithm("relsim", pattern=PATTERN, patterns=[PATTERN])
    with pytest.raises(EvaluationError):
        session.algorithm("rwr", pattern=PATTERN)


def test_session_lru_bounds_engine_cache(fig1):
    session = SimilaritySession(fig1, max_cached_matrices=2)
    session.algorithm("relsim", pattern="r-a").rank("DataMining")
    session.algorithm("relsim", pattern="p-in.p-in-").rank("DataMining")
    session.algorithm("relsim", pattern=PATTERN).rank("DataMining")
    assert session.cache_info()["matrices"] <= 2


# ----------------------------------------------------------------------
# Batch path: rank_many == looped rank for every seed algorithm
# ----------------------------------------------------------------------
def _constructor_options(name):
    # hetesim needs a simple meta-path; the pattern algorithms all take
    # the Figure-1 relationship, topology algorithms take none.
    if name in ("relsim", "pathsim", "hetesim", "pattern-rwr",
                "pattern-simrank"):
        return {"pattern": PATTERN}
    return {}


@pytest.mark.parametrize("name", SEED_ALGORITHMS)
def test_rank_many_matches_looped_rank(fig1, name):
    session = SimilaritySession(fig1)
    algorithm = session.algorithm(name, **_constructor_options(name))
    queries = ["DataMining", "Databases", "SoftwareEngineering"]
    batch = algorithm.rank_many(queries, top_k=10)
    assert set(batch) == set(queries)
    for query in queries:
        expected = algorithm.rank(query, top_k=10)
        assert batch[query].items() == expected.items()


@pytest.mark.parametrize("name", ("relsim", "pathsim", "common-neighbors"))
def test_rank_many_matches_on_generated_dataset(dblp_small, name):
    database = dblp_small.database
    session = SimilaritySession(database)
    algorithm = session.algorithm(name, **_constructor_options(name))
    queries = [n for n in database.nodes_of_type("area")][:4]
    batch = algorithm.rank_many(queries)
    for query in queries:
        assert batch[query].items() == algorithm.rank(query).items()


@pytest.mark.parametrize("scoring", ("pathsim", "count", "cosine"))
def test_rank_many_matches_for_every_relsim_scoring(dblp_small, scoring):
    database = dblp_small.database
    session = SimilaritySession(database)
    algorithm = session.algorithm("relsim", pattern=PATTERN, scoring=scoring)
    queries = [n for n in database.nodes_of_type("area")][:4]
    batch = algorithm.rank_many(queries, top_k=5)
    for query in queries:
        assert batch[query].items() == algorithm.rank(query, top_k=5).items()


def test_session_rank_many_by_name_and_instance(fig1):
    session = SimilaritySession(fig1)
    queries = ["DataMining", "Databases"]
    by_name = session.rank_many(queries, algorithm="relsim", pattern=PATTERN)
    instance = session.algorithm("relsim", pattern=PATTERN)
    by_instance = session.rank_many(queries, algorithm=instance)
    for query in queries:
        assert by_name[query].items() == by_instance[query].items()
    with pytest.raises(TypeError):
        session.rank_many(queries, algorithm=instance, pattern=PATTERN)


def test_rank_many_empty_and_unknown_query(fig1):
    session = SimilaritySession(fig1)
    assert session.rank_many([], algorithm="relsim", pattern=PATTERN) == {}
    from repro.exceptions import UnknownNodeError

    with pytest.raises(UnknownNodeError):
        session.rank_many(["ghost"], algorithm="relsim", pattern=PATTERN)


# ----------------------------------------------------------------------
# Fluent builder
# ----------------------------------------------------------------------
def test_builder_round_trip_matches_direct_construction(fig1):
    direct = RelSim(fig1, PATTERN).rank("DataMining", top_k=5)
    fluent = (
        SimilaritySession(fig1)
        .query("DataMining")
        .using("relsim", pattern=PATTERN)
        .top(5)
    )
    assert fluent.items() == direct.items()


def test_builder_expansion_matches_from_simple_pattern(dblp_small):
    database = dblp_small.database
    session = SimilaritySession(database)
    query = next(iter(database.nodes_of_type("area")))
    builder = (
        session.query(query)
        .using("relsim", pattern="p-in.p-in-")
        .expand_patterns(max_patterns=8)
    )
    fluent = builder.rank(top_k=5)
    reference = RelSim.from_simple_pattern(
        database, "p-in.p-in-", max_patterns=8
    )
    assert fluent.items() == reference.rank(query, top_k=5).items()
    assert builder.patterns_used == reference.patterns
    assert len(builder.patterns_used) >= 1


def test_builder_scores_and_answers_of_type(biomed_bundle):
    database = biomed_bundle.database
    session = SimilaritySession(database)
    query = next(iter(biomed_bundle.ground_truth))
    scores = (
        session.query(query)
        .using("relsim", pattern="dd-ph-assoc.ph-pr-assoc.targets-",
               scoring="cosine")
        .answers_of_type("drug")
        .scores()
    )
    assert scores
    assert all(database.node_type(node) == "drug" for node in scores)


def test_builder_expansion_requires_pattern_and_relsim(fig1):
    session = SimilaritySession(fig1)
    with pytest.raises(EvaluationError):
        session.query("DataMining").using("relsim").expand_patterns().rank()
    with pytest.raises(EvaluationError):
        (
            session.query("DataMining")
            .using("rwr")
            .expand_patterns()
            .rank()
        )


def test_builder_caches_built_algorithm(fig1):
    builder = (
        SimilaritySession(fig1)
        .query("DataMining")
        .using("relsim", pattern=PATTERN)
    )
    assert builder.build() is builder.build()
    first = builder.build()
    builder.using("relsim", pattern="r-a-.r-a")
    assert builder.build() is not first


# ----------------------------------------------------------------------
# Harness integration
# ----------------------------------------------------------------------
def test_robustness_experiment_with_sessions_matches_factories(dblp_small):
    database = dblp_small.database
    mapping = dblp2sigm()
    variant = mapping.apply(database)
    p_src = parse_pattern(PATTERN)
    p_tgt = map_pattern(mapping, p_src)
    queries = [n for n in database.nodes_of_type("area")][:5]

    legacy = RobustnessExperiment(
        database,
        variant,
        {
            "RelSim": (
                lambda d: RelSim(d, p_src),
                lambda d: RelSim(d, p_tgt),
            ),
        },
        queries=queries,
        transformation_name="DBLP2SIGM",
    ).run()
    with_sessions = RobustnessExperiment(
        database,
        variant,
        {
            "RelSim": (
                lambda s: s.algorithm("relsim", pattern=p_src),
                lambda s: s.algorithm("relsim", pattern=p_tgt),
            ),
        },
        queries=queries,
        sessions=(SimilaritySession(database), SimilaritySession(variant)),
        transformation_name="DBLP2SIGM",
    ).run()
    assert legacy.taus == with_sessions.taus


def test_robustness_experiment_accepts_session_generator(dblp_small):
    database = dblp_small.database
    variant = dblp2sigm().apply(database)
    experiment = RobustnessExperiment(
        database,
        variant,
        {},
        queries=[],
        sessions=(
            SimilaritySession(d) for d in (database, variant)
        ),
    )
    assert len(experiment.sessions) == 2


def test_rank_many_chunking_matches_single_batch(fig1):
    algorithm = RelSim(fig1, PATTERN)
    queries = ["DataMining", "Databases", "SoftwareEngineering"]
    whole = algorithm.rank_many(queries, top_k=5)
    algorithm.batch_chunk_size = 1
    chunked = algorithm.rank_many(queries, top_k=5)
    for query in queries:
        assert chunked[query].items() == whole[query].items()


def test_session_explain_and_builder_explain(fig1):
    session = SimilaritySession(fig1)
    text = session.explain(["(p-in.p-in-)-", "p-in.p-in-"])
    assert "canonical: p-in.p-in-" in text
    assert "order:" in text
    builder = (
        session.query("DataMining")
        .using("relsim", pattern=PATTERN)
        .expand_patterns(max_patterns=8)
    )
    report = builder.explain()
    assert "patterns" in report
    assert "shared sub-plans" in report
    with pytest.raises(EvaluationError):
        session.query("DataMining").using("rwr").explain()


def test_session_cache_info_reports_memory(fig1):
    session = SimilaritySession(fig1)
    session.algorithm("relsim", pattern=PATTERN).rank("DataMining")
    info = session.cache_info()
    assert info["nnz"] > 0
    assert info["bytes"] > 0


def test_engine_warm_set_api(fig1):
    session = SimilaritySession(fig1)
    patterns = [parse_pattern(PATTERN), parse_pattern("r-a-.r-a")]
    matrices = session.engine.warm(patterns, norms=True)
    assert len(matrices) == 2
    info = session.cache_info()
    assert info["column_norms"] == 2
    # Everything the warm-set touched is now a pure cache hit.
    misses = info["misses"]
    session.engine.warm(patterns, norms=True)
    assert session.cache_info()["misses"] == misses


def test_session_matrices_many_shares_entries(fig1):
    session = SimilaritySession(fig1)
    first = session.matrices_many(["p-in.p-in-", "(p-in.p-in-)-"])
    info = session.cache_info()
    second = session.matrices_many(["p-in.p-in-"])
    assert second[0] is first[0]
    assert session.cache_info()["misses"] == info["misses"]


def test_time_queries_top_k_and_batched(fig1):
    algorithm = RelSim(fig1, PATTERN)
    queries = ["DataMining", "Databases"]
    looped = time_queries(algorithm, queries, top_k=3)
    batched = time_queries(algorithm, queries, top_k=3, batched=True)
    assert looped >= 0.0
    assert batched >= 0.0
