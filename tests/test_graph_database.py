"""Unit tests for repro.graph.database."""

import pytest

from repro.exceptions import (
    NodeTypeConflictError,
    ReproError,
    UnknownEdgeError,
    UnknownLabelError,
    UnknownNodeError,
)
from repro.graph import GraphDatabase, Schema


@pytest.fixture
def db():
    return GraphDatabase(Schema(["a", "b"]))


def test_add_edge_auto_adds_nodes(db):
    db.add_edge(1, "a", 2)
    assert db.has_node(1)
    assert db.has_node(2)
    assert db.has_edge(1, "a", 2)


def test_edge_set_semantics(db):
    db.add_edge(1, "a", 2)
    db.add_edge(1, "a", 2)
    assert db.num_edges() == 1


def test_parallel_edges_with_distinct_labels(db):
    db.add_edge(1, "a", 2)
    db.add_edge(1, "b", 2)
    assert db.num_edges() == 2


def test_unknown_label_rejected(db):
    with pytest.raises(UnknownLabelError):
        db.add_edge(1, "z", 2)


def test_add_edges_bulk(db):
    db.add_edges([(1, "a", 2), (2, "b", 3)])
    assert db.num_edges() == 2


def test_remove_edge(db):
    db.add_edge(1, "a", 2)
    db.remove_edge(1, "a", 2)
    assert not db.has_edge(1, "a", 2)
    assert db.num_edges() == 0
    # nodes survive edge removal
    assert db.has_node(1)


def test_remove_missing_edge_raises(db):
    with pytest.raises(KeyError):
        db.remove_edge(1, "a", 2)


def test_remove_missing_edge_raises_library_error(db):
    # UnknownEdgeError joins the library hierarchy but stays a KeyError
    # for callers that guarded the old bare exception.
    with pytest.raises(UnknownEdgeError) as info:
        db.remove_edge(1, "a", 2)
    assert isinstance(info.value, ReproError)
    assert isinstance(info.value, KeyError)
    assert info.value.edge == (1, "a", 2)
    assert "unknown edge" in str(info.value)


def test_add_node_type_conflict_raises(db):
    db.add_node(1, "kind")
    db.add_node(1, "kind")  # same type: idempotent
    db.add_node(1)          # None: keeps the type
    assert db.node_type(1) == "kind"
    db.add_node(2)
    db.add_node(2, "late")  # None -> type upgrade is allowed
    assert db.node_type(2) == "late"
    with pytest.raises(NodeTypeConflictError) as info:
        db.add_node(1, "other")
    assert isinstance(info.value, ReproError)
    assert db.node_type(1) == "kind"


def test_successors_predecessors(db):
    db.add_edges([(1, "a", 2), (1, "a", 3), (4, "a", 2)])
    assert db.successors(1, "a") == {2, 3}
    assert db.predecessors(2, "a") == {1, 4}
    assert db.successors(2, "a") == set()


def test_degree_counts_both_directions_all_labels(db):
    db.add_edges([(1, "a", 2), (2, "b", 1), (1, "b", 3)])
    assert db.degree(1) == 3
    assert db.degree(2) == 2
    assert db.degree(3) == 1


def test_degree_of_unknown_node_raises(db):
    with pytest.raises(UnknownNodeError):
        db.degree(99)


def test_node_types(db):
    db.add_node(1, "paper")
    assert db.node_type(1) == "paper"
    assert db.nodes_of_type("paper") == [1]


def test_add_node_idempotent_keeps_type(db):
    db.add_node(1, "paper")
    db.add_node(1)
    assert db.node_type(1) == "paper"


def test_add_node_fills_in_missing_type(db):
    db.add_node(1)
    db.add_node(1, "paper")
    assert db.node_type(1) == "paper"


def test_node_type_unknown_node(db):
    with pytest.raises(UnknownNodeError):
        db.node_type(42)


def test_edges_iteration_filtered(db):
    db.add_edges([(1, "a", 2), (2, "b", 3)])
    assert set(db.edges("a")) == {(1, "a", 2)}
    assert set(db.edges()) == {(1, "a", 2), (2, "b", 3)}


def test_used_labels(db):
    db.add_edge(1, "a", 2)
    assert db.used_labels() == {"a"}


def test_used_labels_after_removal(db):
    db.add_edge(1, "a", 2)
    db.remove_edge(1, "a", 2)
    assert db.used_labels() == set()


def test_label_pairs(db):
    db.add_edges([(1, "a", 2), (3, "a", 4)])
    assert db.label_pairs("a") == {(1, 2), (3, 4)}


def test_label_pairs_unknown_label(db):
    with pytest.raises(UnknownLabelError):
        db.label_pairs("z")


def test_copy_is_deep(db):
    db.add_node(1, "paper")
    db.add_edge(1, "a", 2)
    clone = db.copy()
    clone.add_edge(2, "b", 3)
    assert not db.has_edge(2, "b", 3)
    assert clone.node_type(1) == "paper"


def test_same_content(db):
    db.add_edge(1, "a", 2)
    clone = db.copy()
    assert db.same_content(clone)
    clone.add_edge(2, "a", 1)
    assert not db.same_content(clone)


def test_self_loop_allowed(db):
    db.add_edge(1, "a", 1)
    assert db.has_edge(1, "a", 1)
    assert db.degree(1) == 2


# ----------------------------------------------------------------------
# Bulk construction (the scale-generator path)
# ----------------------------------------------------------------------
def test_add_edges_bulk_matches_add_edge(db):
    pairs = [(1, 2), (1, 3), (2, 3), (1, 2), (3, 3)]
    added = db.add_edges_bulk("a", pairs)
    assert added == 4  # (1, 2) deduplicated by set semantics
    reference = GraphDatabase(Schema(["a", "b"]))
    for source, target in pairs:
        reference.add_edge(source, "a", target)
    assert db.same_content(reference)
    assert db.num_edges() == reference.num_edges()


def test_add_edges_bulk_unknown_label(db):
    with pytest.raises(UnknownLabelError):
        db.add_edges_bulk("nope", [(1, 2)])
    assert db.num_edges() == 0


def test_add_edges_bulk_counts_only_new(db):
    db.add_edge(1, "a", 2)
    assert db.add_edges_bulk("a", [(1, 2), (2, 1)]) == 1
    assert db.num_edges() == 2


def test_adjacency_lists_cover_edges(db):
    db.add_edges([(1, "a", 2), (1, "a", 3), (2, "a", 1), (1, "b", 2)])
    flattened = {
        (source, target)
        for source, targets in db.adjacency_lists("a")
        for target in targets
    }
    assert flattened == {(1, 2), (1, 3), (2, 1)}
    with pytest.raises(UnknownLabelError):
        db.adjacency_lists("nope")
