"""HTTP-level tests for the serving front-end (ReproServer).

Every test boots a real :class:`~repro.server.app.BackgroundServer` on
a free port and talks actual HTTP/1.1 to it with ``http.client`` —
the same wire path operators use — then asserts response parity
against direct :class:`PreparedQuery` calls, backpressure behavior,
apply safety, and health reporting.
"""

import json
import socket
import threading
import time
import http.client

import pytest

from repro.api import SimilarityService
from repro.server import BackgroundServer, load_service
from repro.server.app import MAX_BODY_BYTES, ReproServer

PATTERN = "r-a-.p-in.p-in-.r-a"
QUERIES = ("DataMining", "Databases", "SoftwareEngineering")
DELTA_EDGE = ["CodeMining", "p-in", "VLDB"]


def _call(address, method, path, payload=None, timeout=30):
    connection = http.client.HTTPConnection(*address, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        connection.request(method, path, body=body)
        response = connection.getresponse()
        headers = dict(response.getheaders())
        return response.status, json.loads(response.read()), headers
    finally:
        connection.close()


@pytest.fixture
def serving(fig1):
    service = SimilarityService(fig1)
    prepared = service.prepare(algorithm="relsim", pattern=PATTERN, top_k=2)
    with BackgroundServer(service, prepared, port=0) as background:
        yield service, prepared, background.address


def test_query_matches_direct_run(serving):
    service, prepared, address = serving
    for query in QUERIES:
        status, payload, _ = _call(
            address, "POST", "/query", {"node": query}
        )
        assert status == 200
        assert payload["node"] == query
        assert payload["version"] == service.version
        assert payload["ranking"] == [
            [node, score] for node, score in prepared.run(query).items()
        ]


def test_query_top_k_is_three_valued(serving):
    _, prepared, address = serving
    query = "Databases"
    _, absent, _ = _call(address, "POST", "/query", {"node": query})
    _, null, _ = _call(
        address, "POST", "/query", {"node": query, "top_k": None}
    )
    _, one, _ = _call(
        address, "POST", "/query", {"node": query, "top_k": 1}
    )
    assert len(absent["ranking"]) == len(prepared.run(query).items())
    assert len(null["ranking"]) == len(
        prepared.run(query, top_k=None).items()
    )
    assert len(one["ranking"]) == 1
    assert absent["ranking"][0] == one["ranking"][0]


def test_rank_many_matches_run_many(serving):
    _, prepared, address = serving
    status, payload, _ = _call(
        address, "POST", "/rank_many", {"nodes": list(QUERIES), "top_k": 3}
    )
    assert status == 200
    expected = prepared.run_many(list(QUERIES), top_k=3)
    assert payload["rankings"] == {
        query: [[n, s] for n, s in expected[query].items()]
        for query in QUERIES
    }


def test_apply_failure_leaves_snapshot_untouched(serving):
    service, _, address = serving
    probe = QUERIES[0]
    _, before, _ = _call(address, "POST", "/query", {"node": probe})
    version = service.version

    status, rejected, _ = _call(
        address,
        "POST",
        "/apply",
        {"edges_removed": [["ghost", "r-a", "nowhere"]]},
    )
    assert status == 409
    assert "ghost" in rejected["error"]
    assert service.version == version
    _, after, _ = _call(address, "POST", "/query", {"node": probe})
    assert after["ranking"] == before["ranking"]
    assert after["version"] == version

    # A good delta still lands, rebinding the served prepared query.
    status, applied, _ = _call(
        address, "POST", "/apply", {"edges_added": [DELTA_EDGE]}
    )
    assert status == 200
    assert applied["version"] == version + 1
    assert applied["path"] in ("incremental", "rebuild")
    _, updated, _ = _call(address, "POST", "/query", {"node": probe})
    assert updated["version"] == version + 1
    assert updated["ranking"] != before["ranking"]


def test_apply_validation(serving):
    _, _, address = serving
    status, payload, _ = _call(address, "POST", "/apply", {})
    assert status == 400 and "empty delta" in payload["error"]
    status, payload, _ = _call(
        address,
        "POST",
        "/apply",
        {"edges_added": [DELTA_EDGE], "incremental": "yes"},
    )
    assert status == 400 and "incremental" in payload["error"]
    status, payload, _ = _call(
        address, "POST", "/apply", {"edges_added": [["only-two", "p-in"]]}
    )
    assert status == 400


def test_unknown_node_maps_to_404(serving):
    _, _, address = serving
    status, payload, _ = _call(
        address, "POST", "/query", {"node": "NoSuchNode"}
    )
    assert status == 404
    assert "NoSuchNode" in payload["error"]


def test_unknown_endpoint_and_method_not_allowed(serving):
    _, _, address = serving
    status, payload, _ = _call(address, "POST", "/nope", {"node": "x"})
    assert status == 404 and "/nope" in payload["error"]
    status, payload, headers = _call(address, "GET", "/query")
    assert status == 405
    assert headers["Allow"] == "POST"


def test_malformed_json_and_missing_fields(serving):
    _, _, address = serving
    connection = http.client.HTTPConnection(*address, timeout=30)
    try:
        connection.request("POST", "/query", body=b"{not json")
        response = connection.getresponse()
        assert response.status == 400
        response.read()
    finally:
        connection.close()
    status, payload, _ = _call(address, "POST", "/query", {})
    assert status == 400 and "node" in payload["error"]


def test_oversized_body_refused_up_front(serving):
    _, _, address = serving
    connection = http.client.HTTPConnection(*address, timeout=30)
    try:
        # Announce an oversized body without sending it: the server
        # must refuse from the header alone.
        connection.putrequest("POST", "/query")
        connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
        connection.endheaders()
        response = connection.getresponse()
        assert response.status == 413
        response.read()
    finally:
        connection.close()


def test_non_http_bytes_get_a_400_not_a_hang(serving):
    _, _, address = serving
    with socket.create_connection(address, timeout=30) as raw:
        raw.sendall(b"NOT-HTTP\r\n\r\n")
        assert raw.recv(64).startswith(b"HTTP/1.1 400")


def test_keep_alive_connection_serves_many_requests(serving):
    _, prepared, address = serving
    connection = http.client.HTTPConnection(*address, timeout=30)
    try:
        for query in QUERIES * 2:
            connection.request(
                "POST", "/query", body=json.dumps({"node": query})
            )
            response = connection.getresponse()
            assert response.status == 200
            payload = json.loads(response.read())
            assert payload["ranking"] == [
                [n, s] for n, s in prepared.run(query).items()
            ]
    finally:
        connection.close()


def test_explain_prepared_and_ad_hoc(serving):
    service, prepared, address = serving
    status, payload, _ = _call(address, "GET", "/explain")
    assert status == 200
    assert payload["explain"] == prepared.explain()
    status, payload, _ = _call(
        address, "POST", "/explain", {"patterns": [PATTERN, "r-a-.r-a"]}
    )
    assert status == 200
    assert payload["explain"] == service.session.explain(
        [PATTERN, "r-a-.r-a"]
    )


def test_ill_typed_pattern_maps_to_400_with_diagnostics(serving):
    # The compile-time type checker fires behind the HTTP surface; the
    # client gets a structured 400, not an empty ranking or a 500.
    _, _, address = serving
    status, payload, _ = _call(
        address, "POST", "/explain", {"patterns": ["r-a.r-a"]}
    )
    assert status == 400
    assert payload["kind"] == "PatternTypeError"
    diagnostic = payload["diagnostics"][0]
    assert diagnostic["severity"] == "error"
    assert diagnostic["code"] == "endpoint-mismatch"
    assert diagnostic["span"] == [4, 7]
    assert diagnostic["pattern"] == "r-a.r-a"
    assert "r-a.r-a" in payload["error"]


def test_healthz_ok_then_degraded_then_cleared(serving):
    service, _, address = serving
    status, health, _ = _call(address, "GET", "/healthz")
    assert status == 200
    assert health["status"] == "ok"
    assert health["version"] == service.version
    assert health["uptime"] >= 0

    thread = service.apply(
        edges_removed=[("ghost", "r-a", "nowhere")], wait=False
    )
    thread.join(timeout=30)
    status, health, _ = _call(address, "GET", "/healthz")
    assert status == 200  # degraded is a report, not an HTTP failure
    assert health["status"] == "degraded"
    assert health["last_error"]["operation"] == "apply"
    assert "ghost" in health["last_error"]["message"]

    service.clear_last_error()
    _, health, _ = _call(address, "GET", "/healthz")
    assert health["status"] == "ok"


def test_statz_reports_serving_counters(serving):
    service, _, address = serving
    _call(address, "POST", "/query", {"node": QUERIES[0]})
    status, stats, _ = _call(address, "GET", "/statz")
    assert status == 200
    assert stats["version"] == service.version
    assert stats["requests"] >= 2
    assert stats["rejected"] == 0
    assert stats["coalesce"] is True
    assert stats["batcher"]["requests"] >= 1
    assert stats["cache_info"]["matrices"] == service.session.cache_info()[
        "matrices"
    ]
    assert stats["delta_stats"] == service.delta_stats


class _SlowPrepared:
    """Wraps a prepared query, pinning each run inside a hold gate."""

    def __init__(self, inner, hold):
        self._inner = inner
        self._hold = hold

    def run(self, node, **kwargs):
        self._hold.wait(timeout=30)
        return self._inner.run(node, **kwargs)

    def run_many(self, nodes, **kwargs):
        self._hold.wait(timeout=30)
        return self._inner.run_many(nodes, **kwargs)

    def explain(self):
        return self._inner.explain()


def test_saturated_server_sheds_load_but_stays_inspectable(fig1):
    service = SimilarityService(fig1)
    prepared = service.prepare(algorithm="relsim", pattern=PATTERN, top_k=2)
    hold = threading.Event()
    slow = _SlowPrepared(prepared, hold)
    with BackgroundServer(
        service, slow, port=0, coalesce=False, max_inflight=1, threads=2
    ) as background:
        address = background.address
        results = []

        def client():
            results.append(
                _call(address, "POST", "/query", {"node": QUERIES[0]})
            )

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 30
        # Wait until the one admitted request occupies the slot and at
        # least one other has been shed.
        while time.monotonic() < deadline:
            if any(status == 503 for status, _, _ in results):
                break
            time.sleep(0.01)

        # Introspection stays available while the server is saturated.
        status, health, _ = _call(address, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok"
        status, stats, _ = _call(address, "GET", "/statz")
        assert status == 200 and stats["inflight"] >= 1

        hold.set()  # release the admitted request
        for thread in threads:
            thread.join(timeout=30)

    assert len(results) == 4
    statuses = sorted(status for status, _, _ in results)
    assert statuses[0] == 200 and statuses[-1] == 503
    for status, payload, headers in results:
        if status == 503:
            assert headers["Retry-After"] == "1"
            assert "saturated" in payload["error"]
        else:
            assert payload["ranking"]


def test_snapshot_checkpoint_after_apply(fig1, tmp_path):
    snapshot_path = str(tmp_path / "live.npz")
    service = SimilarityService(fig1)
    prepared = service.prepare(algorithm="relsim", pattern=PATTERN, top_k=2)
    with BackgroundServer(
        service, prepared, port=0, snapshot_path=snapshot_path
    ) as background:
        status, applied, _ = _call(
            background.address,
            "POST",
            "/apply",
            {"edges_added": [DELTA_EDGE]},
        )
        assert status == 200 and applied["version"] == 2
        expected = {
            q: prepared.run(q).items() for q in QUERIES
        }

    # The checkpoint wrote the *post-apply* state: a warm restart
    # serves the delta without replaying it.
    warm, info = load_service(snapshot_path)
    assert info["service_version"] == 2
    assert warm.database.has_edge(*DELTA_EDGE)
    warm_prepared = warm.prepare(
        algorithm="relsim", pattern=PATTERN, top_k=2
    )
    assert {q: warm_prepared.run(q).items() for q in QUERIES} == expected
    assert warm.session.cache_info()["misses"] == 0


def _read_sse_event(response):
    """Parse one ``event:``/``data:`` frame off an open SSE response."""
    name, data = None, None
    while True:
        line = response.readline()
        if not line:
            return None
        line = line.decode("utf-8").rstrip("\r\n")
        if line.startswith("event:"):
            name = line.split(":", 1)[1].strip()
        elif line.startswith("data:"):
            data = json.loads(line.split(":", 1)[1].strip())
        elif line == "" and name is not None:
            return name, data


def test_subscribe_streams_snapshot_then_updates(serving):
    service, prepared, address = serving
    node = QUERIES[0]
    connection = http.client.HTTPConnection(*address, timeout=30)
    try:
        connection.request(
            "POST", "/subscribe", body=json.dumps({"node": node})
        )
        response = connection.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "text/event-stream"

        name, snapshot = _read_sse_event(response)
        assert name == "snapshot"
        assert snapshot["version"] == service.version
        assert snapshot["ranking"] == [
            [n, s] for n, s in prepared.run(node).items()
        ]

        status, stats, _ = _call(address, "GET", "/statz")
        assert status == 200
        assert stats["subscriptions"]["active"] == 1
        assert stats["subscriptions"]["sse_streams"] == 1

        # A ranking-moving delta applied over a second connection is
        # pushed to the already-open stream.
        status, applied, _ = _call(
            address, "POST", "/apply", {"edges_added": [DELTA_EDGE]}
        )
        assert status == 200
        name, update = _read_sse_event(response)
        assert name == "update"
        assert update["version"] == applied["version"]
        assert update["ranking"] == [
            [n, s] for n, s in prepared.run(node).items()
        ]
        # The delta only moved scores here, so the membership diff is
        # empty — but the pushed ranking itself must have changed.
        assert update["ranking"] != snapshot["ranking"]
        for key in ("entered", "left", "reordered"):
            assert isinstance(update[key], list)
    finally:
        connection.close()


def test_subscribe_unknown_node_is_404_not_a_stream(serving):
    _, _, address = serving
    status, payload, headers = _call(
        address, "POST", "/subscribe", {"node": "NoSuchNode"}
    )
    assert status == 404
    assert "NoSuchNode" in payload["error"]
    assert headers["Content-Type"] == "application/json"


def test_subscriber_limit_sheds_with_retry_after(fig1):
    service = SimilarityService(fig1)
    prepared = service.prepare(algorithm="relsim", pattern=PATTERN, top_k=2)
    with BackgroundServer(
        service, prepared, port=0, max_subscribers=0
    ) as background:
        status, payload, headers = _call(
            background.address, "POST", "/subscribe", {"node": QUERIES[0]}
        )
    assert status == 503
    assert "subscriber limit" in payload["error"]
    assert int(headers["Retry-After"]) >= 1


def test_retry_after_scales_with_congestion(fig1):
    service = SimilarityService(fig1)
    prepared = service.prepare(algorithm="relsim", pattern=PATTERN, top_k=2)
    server = ReproServer(service, prepared, max_inflight=4, coalesce=False)
    assert server._retry_after() == "1"  # idle: invite a quick retry
    server._inflight = 4
    assert server._retry_after() == "1"
    server._inflight = 12
    assert server._retry_after() == "3"
    server._inflight = 10_000
    assert server._retry_after() == "8"  # clamped: don't strand clients


def test_background_server_shuts_down_cleanly(fig1):
    service = SimilarityService(fig1)
    prepared = service.prepare(algorithm="relsim", pattern=PATTERN, top_k=2)
    background = BackgroundServer(service, prepared, port=0)
    with background:
        address = background.address
        # An idle keep-alive connection must not wedge shutdown.
        idle = http.client.HTTPConnection(*address, timeout=30)
        idle.request("POST", "/query", body=json.dumps({"node": "Databases"}))
        idle.getresponse().read()
    assert not background._thread.is_alive()
    idle.close()
    with pytest.raises(OSError):
        _call(address, "GET", "/healthz", timeout=2)
