"""Tests for premise-graph traversal enumeration (Section 5 example)."""

import pytest

from repro.constraints import PremiseGraph, parse_tgd
from repro.exceptions import CyclicPremiseError
from repro.lang import parse_pattern
from repro.patterns import enumerate_traversals


DBLP_TGD = parse_tgd(
    "(x1, r-a, x3) & (x1, p-in, x4) & (x2, p-in, x4) -> (x2, r-a, x3)"
)


def strs(patterns):
    return {str(p) for p in patterns}


def test_paper_example_traversals():
    """Section 5's worked example: traversals of G_pre(gamma1) from the
    area variable to the proceedings variable are a.p, <<a.p>>,
    a.p.[p-], <<a.p>>.[p-].  In our premise-graph orientation (r-a goes
    paper -> area) the spine from x3 (area) to x4 (proceedings) is
    r-a-.p-in and the branch is the second p-in edge to x2."""
    graph = PremiseGraph(DBLP_TGD)
    found = strs(enumerate_traversals(graph, "x3", "x4"))
    assert "r-a-.p-in" in found
    assert "<<r-a-.p-in>>" in found
    assert "r-a-.p-in.[p-in-]" in found
    assert "<<r-a-.p-in>>.[p-in-]" in found


def test_plain_spine_is_first():
    graph = PremiseGraph(DBLP_TGD)
    patterns = enumerate_traversals(graph, "x3", "x4")
    assert str(patterns[0]) == "r-a-.p-in"
    # Between directly connected variables the spine is the single edge.
    direct = enumerate_traversals(graph, "x1", "x4")
    assert str(direct[0]) == "p-in"


def test_traversals_between_disconnected_variables():
    tgd = parse_tgd("(x, a, y) & (u, b, v) -> (x, a, v)")
    graph = PremiseGraph(tgd)
    assert enumerate_traversals(graph, "x", "u") == []


def test_traversals_reverse_direction():
    graph = PremiseGraph(DBLP_TGD)
    found = strs(enumerate_traversals(graph, "x4", "x3"))
    assert "p-in-.r-a" in found


def test_traversals_between_the_two_papers():
    graph = PremiseGraph(DBLP_TGD)
    found = strs(enumerate_traversals(graph, "x2", "x1"))
    # spine p-in.p-in-; branch at x1: the r-a edge to the leaf x3.
    assert "p-in.p-in-" in found
    assert "p-in.p-in-.[r-a]" in found


def test_branch_positions_respected():
    # Chain premise with a side branch in the middle:
    tgd = parse_tgd(
        "(x, a, y) & (y, b, z) & (y, c, w) -> (x, d, z)"
    )
    graph = PremiseGraph(tgd)
    found = strs(enumerate_traversals(graph, "x", "z"))
    assert "a.b" in found
    assert "a.[c].b" in found
    # segments on either side of the branch skip independently
    assert "<<a>>.[c].b" in found
    assert "a.[c].<<b>>" in found


def test_deep_branch_nested_recursively():
    tgd = parse_tgd(
        "(x, a, y) & (y, b, z) & (z, c, w) -> (x, d, y)"
    )
    graph = PremiseGraph(tgd)
    found = strs(enumerate_traversals(graph, "x", "y"))
    assert "a" in found
    # branch from y is the chain b.c
    assert "a.[b.c]" in found
    # sub-branch nesting variant
    assert "a.[b.[c]]" in found


def test_max_patterns_cap():
    graph = PremiseGraph(DBLP_TGD)
    capped = enumerate_traversals(graph, "x1", "x4", max_patterns=3)
    assert len(capped) <= 3


def test_cyclic_premise_rejected():
    tgd = parse_tgd("(x, a, y) & (y, b, x) -> (x, c, y)")
    graph = PremiseGraph(tgd)
    with pytest.raises(CyclicPremiseError):
        enumerate_traversals(graph, "x", "y")


def test_all_results_unique():
    graph = PremiseGraph(DBLP_TGD)
    patterns = enumerate_traversals(graph, "x1", "x4")
    assert len(patterns) == len(set(patterns))


def test_traversals_same_start_and_end():
    graph = PremiseGraph(DBLP_TGD)
    patterns = enumerate_traversals(graph, "x1", "x1")
    # Empty spine; branches of x1 may still be nested (or nothing at all,
    # which yields no pattern pieces).
    for pattern in patterns:
        assert "[" in str(pattern)
