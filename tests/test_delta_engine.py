"""Delta maintenance below the service: database, view, and engine.

The parity fuzz suite (``test_delta_parity.py``) checks end-to-end
rankings; these tests pin down the layer contracts it rests on —
batch-delta validation atomicity, in-place view patching with scoped
candidate invalidation, exact engine propagation with shared sub-plans
resolved once, threshold-based invalidation, and live ``cache_info``
accounting after patches and invalidations.
"""

import numpy as np
import pytest

from repro.datasets import generate_dblp
from repro.exceptions import (
    NodeTypeConflictError,
    UnknownEdgeError,
    UnknownLabelError,
)
from repro.graph.matrices import MatrixView, resized
from repro.lang.matrix_semantics import CommutingMatrixEngine
from repro.lang.parser import parse_pattern

PATTERNS = [
    "r-a-.p-in.p-in-.r-a",
    "p-in.p-in-",
    "w-.w",
    "<<p-in.p-in->>",
    "[r-a-.p-in]",
    "w*",
    "r-a-.r-a + p-in.p-in-",
    "r-a-.<<p-in.p-in->>.r-a",
]


@pytest.fixture
def dblp():
    return generate_dblp(
        num_areas=4, num_procs=8, num_papers=60, num_authors=30, seed=3
    ).database


def _structurally_equal(a, b):
    return (
        a.shape == b.shape
        and np.array_equal(a.indptr, b.indptr)
        and np.array_equal(a.indices, b.indices)
        and np.array_equal(a.data, b.data)
    )


def _some_missing_edge(database, label, sources, targets):
    for source in sources:
        for target in targets:
            if not database.has_edge(source, label, target):
                return (source, label, target)
    raise AssertionError("no missing edge found")


# ----------------------------------------------------------------------
# GraphDatabase.apply_delta
# ----------------------------------------------------------------------
def test_database_apply_delta_validates_before_mutating(dblp):
    present = sorted(dblp.edges("p-in"))[0]
    edges_before = dblp.edge_set()
    nodes_before = set(dblp.nodes())
    # Unknown label in additions: nothing applied.
    with pytest.raises(UnknownLabelError):
        dblp.apply_delta(
            edges_added=[("a", "no-such-label", "b")],
            edges_removed=[present],
        )
    # Absent (and doubly-removed) edges: nothing applied.
    with pytest.raises(UnknownEdgeError):
        dblp.apply_delta(
            edges_added=[("x", "p-in", "y")],
            edges_removed=[("ghost", "p-in", "nowhere")],
        )
    with pytest.raises(UnknownEdgeError):
        dblp.apply_delta(edges_removed=[present, present])
    # Node-type conflicts: nothing applied.
    with pytest.raises(NodeTypeConflictError):
        dblp.apply_delta(nodes_added=[(present[0], "area")])
    assert dblp.edge_set() == edges_before
    assert set(dblp.nodes()) == nodes_before


def test_database_apply_delta_reports_effective_changes(dblp):
    papers = dblp.nodes_of_type("paper")
    procs = dblp.nodes_of_type("proc")
    present = sorted(dblp.edges("p-in"))[0]
    missing = _some_missing_edge(dblp, "p-in", papers, procs)
    added, removed, new_nodes = dblp.apply_delta(
        # A present edge is a set-semantics no-op and not reported; an
        # edge with fresh endpoints reports the endpoints as new nodes.
        edges_added=[missing, sorted(dblp.edges("w"))[0],
                     ("fresh:paper", "p-in", procs[0])],
        edges_removed=[present],
        nodes_added=["loose", ("typed", "proc")],
    )
    assert added == [missing, ("fresh:paper", "p-in", procs[0])]
    assert removed == [present]
    assert new_nodes == ["loose", "typed", "fresh:paper"]
    assert not dblp.has_edge(*present)
    assert dblp.has_edge(*missing)
    assert dblp.node_type("typed") == "proc"
    # Removing and re-adding in one batch nets out.
    added, removed, _ = dblp.apply_delta(
        edges_added=[missing], edges_removed=[missing]
    )
    assert added == [missing] and removed == [missing]
    assert dblp.has_edge(*missing)


# ----------------------------------------------------------------------
# MatrixView.apply_delta
# ----------------------------------------------------------------------
def test_database_apply_delta_self_loop_on_new_node_reported_once(dblp):
    added, _, new_nodes = dblp.apply_delta(
        edges_added=[("loop:new", "w", "loop:new")]
    )
    assert added == [("loop:new", "w", "loop:new")]
    assert new_nodes == ["loop:new"]


def test_view_apply_delta_self_loop_on_new_node(dblp):
    view = MatrixView(dblp)
    view.adjacency("w")
    delta = view.apply_delta(edges_added=[("loop:new", "w", "loop:new")])
    assert delta.added_nodes == ["loop:new"]
    fresh = MatrixView(dblp)
    assert view.indexer.ids == fresh.indexer.ids
    assert _structurally_equal(view.adjacency("w"), fresh.adjacency("w"))


def test_view_apply_delta_matches_fresh_adjacency(dblp):
    view = MatrixView(dblp)
    for label in ("w", "p-in", "r-a"):
        view.adjacency(label)
    present = sorted(dblp.edges("p-in"))[0]
    missing = _some_missing_edge(
        dblp, "r-a", dblp.nodes_of_type("paper"), dblp.nodes_of_type("area")
    )
    delta = view.apply_delta(
        edges_added=[missing, ("new:paper", "p-in", present[2])],
        edges_removed=[present],
    )
    assert sorted(delta.patches) == ["p-in", "r-a"]
    assert delta.grew and delta.added_nodes == ["new:paper"]
    fresh = MatrixView(dblp)
    assert view.indexer.ids == fresh.indexer.ids
    for label in ("w", "p-in", "r-a"):
        assert _structurally_equal(
            view.adjacency(label), fresh.adjacency(label)
        )


def test_view_candidate_invalidation_scoped_to_affected_types(dblp):
    view = MatrixView(dblp)
    paper_index = view.candidate_index("paper")
    proc_index = view.candidate_index("proc")
    all_index = view.candidate_index(None)
    # Edge-only delta: every candidate list untouched (same objects).
    edge = sorted(dblp.edges("p-in"))[0]
    view.apply_delta(edges_removed=[edge])
    assert view.candidate_index("paper") is paper_index
    assert view.candidate_index("proc") is proc_index
    assert view.candidate_index(None) is all_index
    # Adding a proc node: proc and all-nodes lists drop, paper survives.
    view.apply_delta(nodes_added=[("proc:new", "proc")])
    assert view.candidate_index("paper") is paper_index
    assert view.candidate_index("proc") is not proc_index
    assert view.candidate_index(None) is not all_index
    assert "proc:new" in view.candidate_index("proc")[0]


def test_view_retyping_untyped_node_invalidates_new_types_candidates(dblp):
    dblp.add_node("untyped:0")
    view = MatrixView(dblp)
    proc_index = view.candidate_index("proc")
    paper_index = view.candidate_index("paper")
    assert "untyped:0" not in proc_index[0]
    # Upgrading the untyped node to "proc" changes no node count, but
    # it joins the proc candidate list — the list must be rebuilt.
    view.apply_delta(nodes_added=[("untyped:0", "proc")])
    assert "untyped:0" in view.candidate_index("proc")[0]
    assert view.candidate_index("paper") is paper_index  # still scoped
    fresh = MatrixView(dblp)
    assert view.candidate_index("proc")[0] == fresh.candidate_index("proc")[0]


def test_engine_delta_sweeps_orphaned_derived_vectors(dblp):
    engine, _ = _loaded_engine(dblp)
    pattern = parse_pattern("p-in.p-in-")
    plan = engine.compile(pattern)
    # Simulate the eviction race: a derived vector whose matrix is no
    # longer cached must be dropped by the next delta pass, never
    # patched-in-place against nothing or served stale.
    with engine._lock:
        del engine._cache[plan]
        assert plan in engine._diagonals
    edge = sorted(dblp.edges("p-in"))[0]
    engine.apply_delta(edges_removed=[edge])
    with engine._lock:
        assert plan not in engine._diagonals
        assert plan not in engine._column_norms
    assert np.array_equal(
        engine.diagonal(pattern), CommutingMatrixEngine(dblp).diagonal(pattern)
    )


def test_view_fork_isolates_the_original(dblp):
    view = MatrixView(dblp)
    original = view.adjacency("p-in")
    forked_db = dblp.copy()
    fork = view.fork(forked_db)
    edge = sorted(dblp.edges("p-in"))[0]
    fork.apply_delta(edges_removed=[edge])
    assert view.adjacency("p-in") is original  # untouched, same object
    assert dblp.has_edge(*edge)
    assert not forked_db.has_edge(*edge)
    assert fork.adjacency("p-in").nnz == original.nnz - 1


# ----------------------------------------------------------------------
# CommutingMatrixEngine.apply_delta
# ----------------------------------------------------------------------
def _loaded_engine(database, **engine_options):
    engine = CommutingMatrixEngine(database, **engine_options)
    patterns = [parse_pattern(text) for text in PATTERNS]
    engine.matrices_many(patterns)
    for pattern in patterns[:4]:
        engine.diagonal(pattern)
        engine.column_norms(pattern)
    return engine, patterns


def test_engine_apply_delta_matches_fresh_engine(dblp):
    engine, patterns = _loaded_engine(dblp)
    present = sorted(dblp.edges("p-in"))[0]
    missing = _some_missing_edge(
        dblp, "r-a", dblp.nodes_of_type("paper"), dblp.nodes_of_type("area")
    )
    entries = engine.cache_size()
    stats = engine.apply_delta(
        edges_added=[missing, ("new:paper", "p-in", present[2])],
        edges_removed=[present],
        nodes_added=[("new:proc", "proc")],
    )
    assert stats["patched"] + stats["kept"] + stats["invalidated"] == entries
    assert stats["nodes_added"] == 2
    fresh = CommutingMatrixEngine(dblp)
    for pattern in patterns:
        assert _structurally_equal(
            engine.matrix(pattern), fresh.matrix(pattern)
        )
        assert np.array_equal(
            engine.diagonal(pattern), fresh.diagonal(pattern)
        )
        assert np.array_equal(
            engine.column_norms(pattern), fresh.column_norms(pattern)
        )


def test_engine_delta_resolves_shared_subchains_once(dblp):
    engine, _ = _loaded_engine(dblp)
    entries = engine.cache_size()
    edge = sorted(dblp.edges("p-in"))[0]
    stats = engine.apply_delta(edges_removed=[edge])
    # Every cache entry is accounted exactly once per delta pass.
    assert stats["patched"] + stats["kept"] + stats["invalidated"] == entries
    assert stats["entries"] == entries - stats["invalidated"]


def test_engine_zero_threshold_invalidates_then_recomputes_exactly(dblp):
    engine, patterns = _loaded_engine(dblp, delta_rebuild_threshold=0.0)
    edge = sorted(dblp.edges("p-in"))[0]
    stats = engine.apply_delta(edges_removed=[edge])
    assert stats["invalidated"] > 0  # every touched product is dropped
    fresh = CommutingMatrixEngine(dblp)
    for pattern in patterns:  # lazily recomputed entries are exact
        assert _structurally_equal(
            engine.matrix(pattern), fresh.matrix(pattern)
        )


def test_engine_star_with_changed_base_is_invalidated_not_stale(dblp):
    engine = CommutingMatrixEngine(dblp)
    star = parse_pattern("w*")
    engine.matrix(star)
    authors = dblp.nodes_of_type("author")
    papers = dblp.nodes_of_type("paper")
    missing = _some_missing_edge(dblp, "w", authors, papers)
    stats = engine.apply_delta(edges_added=[missing])
    assert stats["invalidated"] >= 1
    assert _structurally_equal(
        engine.matrix(star), CommutingMatrixEngine(dblp).matrix(star)
    )


def test_engine_fork_leaves_parent_serving_old_snapshot(dblp):
    engine, patterns = _loaded_engine(dblp)
    reference = {p: engine.matrix(p) for p in patterns}
    fork = engine.fork(dblp.copy())
    edge = sorted(dblp.edges("p-in"))[0]
    fork.apply_delta(edges_removed=[edge])
    for pattern in patterns:
        assert engine.matrix(pattern) is reference[pattern]
    assert dblp.has_edge(*edge)
    changed = parse_pattern("p-in.p-in-")
    assert not _structurally_equal(
        fork.matrix(changed), engine.matrix(changed)
    )


# ----------------------------------------------------------------------
# cache_info accuracy (no stale accounting after patches/evictions)
# ----------------------------------------------------------------------
def _expected_accounting(engine):
    with engine._lock:
        matrices = list(engine._cache.values())
        vectors = list(engine._column_norms.values()) + list(
            engine._diagonals.values()
        )
    nnz = sum(matrix.nnz for matrix in matrices)
    size = sum(
        matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
        for matrix in matrices
    ) + sum(vector.nbytes for vector in vectors)
    return nnz, size


def test_cache_info_accurate_after_patches_and_invalidations(dblp):
    engine, patterns = _loaded_engine(dblp)
    present = sorted(dblp.edges("p-in"))[0]
    engine.apply_delta(edges_removed=[present])
    info = engine.cache_info()
    nnz, size = _expected_accounting(engine)
    assert info["nnz"] == nnz
    assert info["bytes"] == size
    assert info["delta_applies"] == 1
    assert info["patched"] > 0
    # The patched totals must equal what a fresh engine would hold for
    # the same cached plans — no phantom nonzeros from cancelled
    # entries, no stale buffers from replaced matrices.
    fresh = CommutingMatrixEngine(dblp)
    fresh_total = 0
    with engine._lock:
        plans = list(engine._cache)
    for plan in plans:
        fresh_total += fresh._plan_matrix(plan).nnz
    assert info["nnz"] == fresh_total
    # Invalidated entries drop out of the figures immediately.
    strict = _loaded_engine(dblp, delta_rebuild_threshold=0.0)[0]
    before = strict.cache_info()
    stats = strict.apply_delta(edges_added=[present])
    after = strict.cache_info()
    assert stats["invalidated"] > 0
    assert after["matrices"] == before["matrices"] - stats["invalidated"]
    nnz, size = _expected_accounting(strict)
    assert after["nnz"] == nnz and after["bytes"] == size


def test_cache_info_accurate_after_lru_eviction(dblp):
    engine = CommutingMatrixEngine(dblp, max_cached_matrices=2)
    for text in ("p-in.p-in-", "w-.w", "r-a-.r-a"):
        engine.matrix(parse_pattern(text))
        engine.diagonal(parse_pattern(text))
    info = engine.cache_info()
    assert info["matrices"] <= 2 and info["diagonals"] <= 2
    nnz, size = _expected_accounting(engine)
    assert info["nnz"] == nnz and info["bytes"] == size


def test_resized_preserves_values_and_shares_buffers(dblp):
    view = MatrixView(dblp)
    matrix = view.adjacency("p-in")
    grown = resized(matrix, matrix.shape[0] + 5)
    assert grown.shape == (matrix.shape[0] + 5, matrix.shape[0] + 5)
    assert grown.data is matrix.data  # no copy of the entry buffers
    assert np.array_equal(
        grown.toarray()[: matrix.shape[0], : matrix.shape[1]],
        matrix.toarray(),
    )
    assert grown.toarray()[matrix.shape[0]:, :].sum() == 0
