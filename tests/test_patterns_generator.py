"""Tests for Algorithms 1 & 2 and the Section-6 filters."""

import pytest

from repro.constraints import parse_tgd
from repro.datasets.schemas import BIOMED_SCHEMA, DBLP_SCHEMA, WSU_SCHEMA
from repro.exceptions import ConstraintError
from repro.lang import parse_pattern, simple_steps
from repro.patterns import (
    generate_patterns,
    label_definitions,
    mod_pattern_refs,
    nontrivial,
    relevant_to_pattern,
    select_constraints,
    split_constraints,
)


DBLP_TGD = DBLP_SCHEMA.constraints[0]


# ----------------------------------------------------------------------
# Algorithm 2
# ----------------------------------------------------------------------
def test_mod_pattern_refs_finds_replacements():
    steps = simple_steps(parse_pattern("r-a-.p-in"))
    replacements = mod_pattern_refs(DBLP_TGD, steps)
    assert replacements
    patterns = {str(r.pattern) for r in replacements}
    assert "<<r-a-.p-in>>" in patterns
    assert "r-a-.p-in.[p-in-]" in patterns


def test_mod_pattern_refs_never_returns_identity():
    steps = simple_steps(parse_pattern("r-a-.p-in"))
    for replacement in mod_pattern_refs(DBLP_TGD, steps):
        assert replacement.pattern != replacement.original


def test_mod_pattern_refs_localizes_positions():
    steps = simple_steps(parse_pattern("p-in-.r-a-.p-in.p-in-"))
    for replacement in mod_pattern_refs(DBLP_TGD, steps):
        assert 0 <= replacement.start < len(steps)
        assert replacement.start + replacement.length <= len(steps)


def test_mod_pattern_refs_conclusion_filter():
    # Sub-pattern p-in.p-in- contains no conclusion label (r-a), so the
    # Section-6.2 filter suppresses its rewrites.
    steps = simple_steps(parse_pattern("p-in.p-in-"))
    filtered = mod_pattern_refs(DBLP_TGD, steps, conclusion_filter=True)
    assert filtered == []
    unfiltered = mod_pattern_refs(DBLP_TGD, steps, conclusion_filter=False)
    assert unfiltered


def test_label_definitions_for_biomed():
    constraint = BIOMED_SCHEMA.constraints[1]  # dd-ph-indirect
    definitions = label_definitions(constraint)
    assert set(definitions) == {"dd-ph-indirect"}
    assert "dd-ph-assoc.is-parent-of" in {
        str(p) for p in definitions["dd-ph-indirect"]
    }


def test_label_definitions_empty_for_recursive_constraint():
    assert label_definitions(DBLP_TGD) == {}


# ----------------------------------------------------------------------
# Filters
# ----------------------------------------------------------------------
def test_nontrivial_filter():
    trivial = parse_tgd("(x, r-a, y) -> (x, r-a, y)")
    assert nontrivial([trivial, DBLP_TGD]) == [DBLP_TGD]


def test_relevance_filter():
    pattern = parse_pattern("p-in.p-in-")
    assert relevant_to_pattern([DBLP_TGD], pattern) == []
    pattern = parse_pattern("r-a-.r-a")
    assert relevant_to_pattern([DBLP_TGD], pattern) == [DBLP_TGD]


def test_split_constraints():
    recursive, defining = split_constraints(
        list(DBLP_SCHEMA.constraints) + list(BIOMED_SCHEMA.constraints)
    )
    assert DBLP_TGD in recursive
    assert len(defining) == 2


def test_select_constraints_pipeline():
    trivial = parse_tgd("(x, r-a, y) -> (x, r-a, y)")
    pattern = parse_pattern("p-in.p-in-")
    selected = select_constraints([trivial, DBLP_TGD], pattern)
    assert selected == []
    selected = select_constraints(
        [trivial, DBLP_TGD], pattern, use_filters=False
    )
    assert selected == [DBLP_TGD]


# ----------------------------------------------------------------------
# Algorithm 1
# ----------------------------------------------------------------------
def test_generate_patterns_includes_original_first():
    result = generate_patterns("r-a-.p-in.p-in-.r-a", DBLP_SCHEMA.constraints)
    assert str(result.patterns[0]) == "r-a-.p-in.p-in-.r-a"


def test_generate_patterns_produces_skip_variants():
    result = generate_patterns(
        "r-a-.p-in.p-in-.r-a", DBLP_SCHEMA.constraints, max_patterns=64
    )
    texts = {str(p) for p in result}
    assert any("<<" in t for t in texts)
    assert any("[" in t for t in texts)


def test_generate_patterns_biomed_definitions():
    result = generate_patterns(
        "dd-ph-indirect.ph-pr-assoc.targets-", BIOMED_SCHEMA.constraints
    )
    texts = {str(p) for p in result}
    assert "dd-ph-assoc.is-parent-of.ph-pr-assoc.targets-" in texts
    assert "<<dd-ph-assoc.is-parent-of>>.ph-pr-assoc.targets-" in texts


def test_generate_patterns_reversed_defined_label():
    result = generate_patterns(
        "dd-ph-indirect-", BIOMED_SCHEMA.constraints
    )
    texts = {str(p) for p in result}
    assert "is-parent-of-.dd-ph-assoc-" in texts


def test_generate_patterns_no_constraints_returns_input():
    result = generate_patterns("r-a-.r-a", [])
    assert len(result) == 1
    assert result.constraints_used == 0


def test_generate_patterns_irrelevant_constraints_ignored():
    result = generate_patterns("t.t-", WSU_SCHEMA.constraints)
    assert len(result) == 1


def test_generate_patterns_unique():
    result = generate_patterns(
        "r-a-.p-in.p-in-.r-a", DBLP_SCHEMA.constraints, max_patterns=64
    )
    assert len(result.patterns) == len(set(result.patterns))


def test_generate_patterns_cap_and_truncation_flag():
    result = generate_patterns(
        "r-a-.p-in.p-in-.r-a", DBLP_SCHEMA.constraints, max_patterns=10
    )
    assert len(result) <= 10
    assert result.truncated


def test_generate_patterns_rejects_rre_input():
    with pytest.raises(ConstraintError):
        generate_patterns("[r-a]", DBLP_SCHEMA.constraints)


def test_generate_patterns_rejects_empty():
    with pytest.raises(ConstraintError):
        generate_patterns("eps", DBLP_SCHEMA.constraints)


def test_generate_patterns_rejects_non_pattern():
    with pytest.raises(TypeError):
        generate_patterns(99, DBLP_SCHEMA.constraints)


def test_generation_result_repr_and_iter():
    result = generate_patterns("r-a-.r-a", [])
    assert "patterns=1" in repr(result)
    assert list(result) == result.patterns


def test_without_filters_generates_superset():
    filtered = generate_patterns(
        "p-in.p-in-", DBLP_SCHEMA.constraints, max_patterns=64
    )
    unfiltered = generate_patterns(
        "p-in.p-in-",
        DBLP_SCHEMA.constraints,
        use_filters=False,
        max_patterns=64,
    )
    assert set(filtered.patterns) <= set(unfiltered.patterns)
    assert len(unfiltered.patterns) > len(filtered.patterns)
