"""Tests for tools/lint_repro.py — the repo invariant linter.

Each rule gets a positive (fires on bad code) and a negative (quiet on
good code) check through the ``lint_source`` entry point, plus the
suppression lifecycle and the real-source-tree-is-clean gate that CI
relies on.
"""

import os
import sys
import textwrap

import pytest

TOOLS = os.path.join(os.path.dirname(__file__), os.pardir, "tools")
sys.path.insert(0, os.path.abspath(TOOLS))

from lint_repro import (  # noqa: E402
    DENSE_WHITELIST,
    iter_python_files,
    lint_file,
    lint_source,
)


def lint(code, path="src/repro/example.py"):
    return lint_source(textwrap.dedent(code), path)


def rules_of(violations):
    return [violation.rule for violation in violations]


# -- dense-materialization ---------------------------------------------


def test_toarray_flagged():
    violations = lint(
        """
        def scores(matrix):
            return matrix.toarray()
        """
    )
    assert rules_of(violations) == ["dense-materialization"]
    assert violations[0].line == 3
    assert "scores" in violations[0].message


def test_todense_flagged():
    assert rules_of(lint("x = m.todense()")) == ["dense-materialization"]


def test_dense_2d_allocation_flagged():
    violations = lint(
        """
        import numpy as np

        def build(n):
            return np.zeros((n, n))
        """
    )
    assert rules_of(violations) == ["dense-materialization"]


def test_dynamic_identity_flagged():
    assert rules_of(lint("import numpy as np\ns = np.identity(n)")) == [
        "dense-materialization"
    ]


def test_constant_and_1d_allocations_allowed():
    assert lint(
        """
        import numpy as np
        a = np.zeros(n)
        b = np.zeros((3, 4))
        c = np.ones(len(items))
        d = np.identity(5)
        e = np.full(n - old, 0.0)
        """
    ) == []


def test_whitelisted_function_may_densify():
    path, qualname = "src/repro/graph/matrices.py", "dense_rows"
    assert (os.path.join("repro", "graph", "matrices.py").replace(
        os.sep, "/"), qualname) in {
        (suffix, name) for suffix, name in DENSE_WHITELIST
    }
    code = """
    import numpy as np

    def dense_rows(matrix, indices):
        rows = np.zeros((len(indices), matrix.shape[1]))
        return rows
    """
    assert lint(code, path=path) == []
    # The same code outside the whitelisted (path, qualname) is flagged.
    assert rules_of(lint(code, path="src/repro/other.py")) == [
        "dense-materialization"
    ]


# -- lock-discipline ---------------------------------------------------


def test_matmul_under_lock_flagged():
    violations = lint(
        """
        def publish(self, left, right):
            with self._lock:
                self._cache = left @ right
        """
    )
    assert rules_of(violations) == ["lock-discipline"]


def test_multiply_under_lock_flagged():
    violations = lint(
        """
        def publish(self, left, right):
            with self._compiler_lock:
                self._cache = left.multiply(right)
        """
    )
    assert rules_of(violations) == ["lock-discipline"]


def test_matmul_outside_lock_allowed():
    assert lint(
        """
        def publish(self, left, right):
            product = left @ right
            with self._lock:
                self._cache = product
        """
    ) == []


def test_non_lock_with_allowed():
    assert lint(
        """
        def load(self, path, left, right):
            with open(path) as handle:
                return left @ right
        """
    ) == []


def test_callback_dispatch_under_lock_flagged():
    violations = lint(
        """
        def publish(self, event):
            with self._lock:
                self._callback(event)
        """
    )
    assert rules_of(violations) == ["lock-discipline"]
    assert "callback" in violations[0].message


def test_bare_callback_call_under_lock_flagged():
    violations = lint(
        """
        def notify(callback, event, lock):
            with lock:
                callback(event)
        """
    )
    assert rules_of(violations) == ["lock-discipline"]


def test_callback_dispatch_outside_lock_allowed():
    assert lint(
        """
        def publish(self, event):
            with self._lock:
                queued = list(self._events)
            for callback in queued:
                callback(event)
        """
    ) == []


def test_callback_reference_under_lock_allowed():
    # Storing or enqueueing a callback under a lock is the sanctioned
    # pattern; only *invoking* one there is a violation.
    assert lint(
        """
        def register(self, callback):
            with self._lock:
                self._callbacks.append(callback)
                hook = self._lookup(callback)
            hook()
        """
    ) == []


# -- int32-index -------------------------------------------------------


def test_np_int32_flagged():
    violations = lint(
        """
        import numpy as np
        indices = np.asarray(raw, dtype=np.int32)
        """
    )
    assert rules_of(violations) == ["int32-index"]


def test_dtype_string_int32_flagged():
    assert rules_of(
        lint("import numpy as np\nx = np.arange(5, dtype=\"int32\")")
    ) == ["int32-index"]


def test_astype_int32_flagged():
    assert rules_of(lint("y = x.astype(\"int32\")")) == ["int32-index"]


def test_int64_allowed():
    assert lint(
        """
        import numpy as np
        a = np.asarray(raw, dtype=np.int64)
        b = x.astype("int64")
        """
    ) == []


# -- exception-taxonomy ------------------------------------------------


def test_bare_valueerror_in_public_module_flagged():
    violations = lint(
        """
        def bind(name):
            raise ValueError("bad " + name)
        """,
        path="src/repro/api/session.py",
    )
    assert rules_of(violations) == ["exception-taxonomy"]


def test_bare_keyerror_in_server_module_flagged():
    assert rules_of(
        lint("raise KeyError(node)", path="src/repro/server/app.py")
    ) == ["exception-taxonomy"]


def test_reproerror_subclass_allowed_in_public_module():
    assert lint(
        """
        from repro.exceptions import ConfigurationError

        def bind(value):
            raise ConfigurationError("bad value {}".format(value))
        """,
        path="src/repro/api/session.py",
    ) == []


def test_bare_raise_and_typeerror_allowed_in_public_module():
    assert lint(
        """
        def convert(value):
            try:
                return int(value)
            except OverflowError:
                raise
            finally:
                pass

        def check(value):
            raise TypeError("programming error")
        """,
        path="src/repro/server/protocol.py",
    ) == []


def test_valueerror_outside_public_modules_allowed():
    assert lint(
        "raise ValueError('internal')", path="src/repro/lang/plan.py"
    ) == []


# -- shm-lifecycle -----------------------------------------------------


def test_bare_shared_memory_create_flagged():
    violations = lint(
        """
        from multiprocessing import shared_memory

        def publish(size):
            return shared_memory.SharedMemory(create=True, size=size)
        """
    )
    assert rules_of(violations) == ["shm-lifecycle"]
    assert "SegmentRegistry.create" in violations[0].message


def test_direct_import_shared_memory_create_flagged():
    assert rules_of(
        lint(
            """
            from multiprocessing.shared_memory import SharedMemory
            segment = SharedMemory(create=True, size=1024)
            """
        )
    ) == ["shm-lifecycle"]


def test_shared_memory_attach_allowed():
    # Attaching (no create=True) is fine anywhere; so is create=False.
    assert lint(
        """
        from multiprocessing import shared_memory
        a = shared_memory.SharedMemory(name="psm_abc")
        b = shared_memory.SharedMemory(name="psm_abc", create=False)
        """
    ) == []


def test_registry_create_is_whitelisted():
    code = """
    from multiprocessing import shared_memory

    class SegmentRegistry:
        def create(self, size):
            return shared_memory.SharedMemory(create=True, size=size)
    """
    assert lint(code, path="src/repro/server/shm.py") == []
    # The same code anywhere else is flagged.
    assert rules_of(lint(code, path="src/repro/server/other.py")) == [
        "shm-lifecycle"
    ]


# -- suppressions ------------------------------------------------------


def test_same_line_suppression():
    assert lint(
        """
        x = m.toarray()  # repro-lint: ok(dense-materialization) tiny fixture
        """
    ) == []


def test_previous_line_suppression():
    assert lint(
        """
        # repro-lint: ok(dense-materialization) tiny fixture matrix
        x = m.toarray()
        """
    ) == []


def test_suppression_is_rule_specific():
    violations = lint(
        """
        # repro-lint: ok(int32-index) wrong rule for this line
        x = m.toarray()
        """
    )
    # The finding survives AND the waiver is reported as unused.
    assert sorted(rules_of(violations)) == [
        "dense-materialization",
        "unused-suppression",
    ]


def test_unused_suppression_flagged():
    violations = lint(
        """
        # repro-lint: ok(dense-materialization) nothing dense here
        x = 1
        """
    )
    assert rules_of(violations) == ["unused-suppression"]


def test_suppression_requires_reason():
    violations = lint(
        """
        # repro-lint: ok(dense-materialization)
        x = m.toarray()
        """
    )
    assert "unused-suppression" in rules_of(violations)
    assert "dense-materialization" in rules_of(violations)


def test_unknown_rule_in_suppression_flagged():
    violations = lint("# repro-lint: ok(no-such-rule) whatever")
    assert rules_of(violations) == ["unused-suppression"]


def test_syntax_error_reported_not_raised():
    violations = lint_source("def broken(:\n", "src/repro/x.py")
    assert rules_of(violations) == ["syntax"]


# -- the real tree is clean --------------------------------------------


@pytest.mark.parametrize("tree", ["src"])
def test_source_tree_is_clean(tree):
    root = os.path.join(os.path.dirname(__file__), os.pardir, tree)
    violations = []
    for path in iter_python_files([os.path.abspath(root)]):
        violations.extend(lint_file(path))
    assert violations == [], "\n".join(
        "{}:{}: {}: {}".format(v.path, v.line, v.rule, v.message)
        for v in violations
    )
