"""Snapshot round trips: save -> load -> bitwise-identical serving.

The serving snapshot (:mod:`repro.server.snapshot`) persists a
session's database plus its materialized engine cache so a warm start
replaces computation with disk reads.  The contract tested here is the
same one the warm-start benchmark gates: a loaded session must serve
**bitwise-identical** rankings for every registered algorithm with
**zero** engine cache misses, including when the saved database was
mutated through the live-update delta path first.
"""

import json
import os
import zipfile

import numpy as np
import pytest

from repro.api import SimilarityService, SimilaritySession, available_algorithms
from repro.datasets import generate_dblp
from repro.exceptions import SnapshotError
from repro.server import (
    SNAPSHOT_FORMAT,
    load_service,
    load_session,
    save_snapshot,
)

TOP_K = 10

#: One prepared-query spec per registered algorithm (the delta-parity
#: suite's coverage idiom): snapshots must round-trip the cache entries
#: of every scoring family, not just the commuting-matrix ones.
SPECS = [
    ("relsim", {"pattern": "r-a-.p-in.p-in-.r-a"}),
    (
        "relsim",
        {
            "pattern": "r-a-.p-in.p-in-.r-a",
            "expand": {"max_patterns": 8},
        },
    ),
    ("pathsim", {"pattern": "p-in.p-in-"}),
    ("hetesim", {"pattern": "p-in-.p-in", "answer_type": "proc"}),
    ("rwr", {}),
    ("simrank", {}),
    ("pattern-rwr", {"pattern": "p-in.p-in-"}),
    ("pattern-simrank", {"pattern": "p-in.p-in-"}),
    ("common-neighbors", {}),
    ("katz", {}),
]


@pytest.fixture
def tiny_dblp():
    return generate_dblp(
        num_areas=3, num_procs=6, num_papers=36, num_authors=20, seed=11
    ).database


def _prepare_all(target):
    return [
        target.prepare(algorithm=name, top_k=TOP_K, **options)
        for name, options in SPECS
    ]


def _queries(database, options):
    procs = sorted(database.nodes_of_type("proc"))[:3]
    if options.get("answer_type") == "proc":
        return procs
    return sorted(database.nodes_of_type("area"))[:2] + procs


def _rankings(database, prepared):
    return [
        [
            (query, list(handle.run(query).items()))
            for query in _queries(database, options)
        ]
        for (name, options), handle in zip(SPECS, prepared)
    ]


def test_specs_cover_every_registered_algorithm():
    assert {name for name, _ in SPECS} == set(available_algorithms())


def test_round_trip_all_algorithms_bitwise_identical(tiny_dblp, tmp_path):
    path = str(tmp_path / "serving.npz")
    session = SimilaritySession(tiny_dblp)
    reference = _rankings(tiny_dblp, _prepare_all(session))

    stats = save_snapshot(path, session)
    assert stats["matrices"] > 0
    assert stats["bytes"] == os.path.getsize(path)

    warm, info = load_session(path)
    assert info["matrices"] == stats["matrices"]
    assert info["column_norms"] == stats["column_norms"]
    assert info["diagonals"] == stats["diagonals"]
    assert info["skipped"] == 0
    assert info["service_version"] is None  # saved from a bare session
    assert info["num_nodes"] == tiny_dblp.num_nodes()

    assert _rankings(tiny_dblp, _prepare_all(warm)) == reference
    assert warm.cache_info()["misses"] == 0, (
        "warm session recomputed matrices the snapshot should have carried"
    )


def test_round_trip_after_live_delta(tiny_dblp, tmp_path):
    """A database mutated through apply() snapshots and restores exactly."""
    path = str(tmp_path / "mutated.npz")
    service = SimilarityService(tiny_dblp)
    prepared = _prepare_all(service)
    papers = sorted(tiny_dblp.nodes_of_type("paper"))
    procs = sorted(tiny_dblp.nodes_of_type("proc"))
    version = service.apply(
        edges_added=[
            (papers[0], "p-in", procs[-1]),
            (papers[1], "p-in", procs[-2]),
        ],
        edges_removed=[sorted(tiny_dblp.edges("p-in"))[0]],
        incremental=True,
    )
    assert version == 2
    assert service.delta_stats["last_path"] == "incremental"
    reference = _rankings(service.database, prepared)

    save_snapshot(path, service)
    warm_service, info = load_service(path)
    assert info["service_version"] == 2
    assert warm_service.version == 1  # a fresh service restarts at 1
    assert warm_service.database.same_content(service.database)

    warm_rankings = _rankings(
        warm_service.database, _prepare_all(warm_service)
    )
    assert warm_rankings == reference
    assert warm_service.session.cache_info()["misses"] == 0


def test_round_trip_through_incrementally_patched_cache(tiny_dblp, tmp_path):
    """Snapshotting *incrementally patched* matrices equals a fresh build."""
    path = str(tmp_path / "patched.npz")
    service = SimilarityService(tiny_dblp)
    prepared = _prepare_all(service)
    papers = sorted(tiny_dblp.nodes_of_type("paper"))
    areas = sorted(tiny_dblp.nodes_of_type("area"))
    service.apply(
        edges_added=[(papers[2], "r-a", areas[0])], incremental=True
    )
    save_snapshot(path, service)

    warm, _ = load_session(path)
    fresh = SimilaritySession(service.database)
    assert _rankings(warm.database, _prepare_all(warm)) == _rankings(
        fresh.database, _prepare_all(fresh)
    )
    assert warm.cache_info()["misses"] == 0


def test_save_is_atomic_overwrite(tiny_dblp, tmp_path):
    path = str(tmp_path / "over.npz")
    session = SimilaritySession(tiny_dblp)
    session.prepare(algorithm="pathsim", pattern="p-in.p-in-", top_k=5)
    save_snapshot(path, session)
    first = open(path, "rb").read()
    save_snapshot(path, session)  # overwrite in place via temp + replace
    assert os.path.exists(path)
    load_session(path)  # still a valid archive
    assert not [
        name for name in os.listdir(str(tmp_path)) if name.endswith(".tmp")
    ], "temporary snapshot files were left behind"
    assert len(open(path, "rb").read()) >= len(first) - 64


def test_save_rejects_other_sources(tiny_dblp, tmp_path):
    with pytest.raises(TypeError):
        save_snapshot(str(tmp_path / "x.npz"), tiny_dblp)


def test_load_missing_file(tmp_path):
    with pytest.raises(SnapshotError, match="no such snapshot"):
        load_session(str(tmp_path / "absent.npz"))


def test_load_rejects_non_archive(tmp_path):
    path = str(tmp_path / "not-a-zip.npz")
    with open(path, "w") as handle:
        handle.write("just text\n")
    with pytest.raises(SnapshotError, match="unreadable snapshot"):
        load_session(path)


def test_load_rejects_foreign_npz(tmp_path):
    path = str(tmp_path / "foreign.npz")
    np.savez(open(path, "wb"), payload=np.arange(4))
    with pytest.raises(SnapshotError, match="not a repro serving snapshot"):
        load_session(path)


def test_load_rejects_unknown_format(tiny_dblp, tmp_path):
    path = str(tmp_path / "future.npz")
    session = SimilaritySession(tiny_dblp)
    save_snapshot(path, session)
    _rewrite_manifest(path, lambda manifest: dict(manifest, format=99))
    with pytest.raises(SnapshotError, match="format 99 is not supported"):
        load_session(path)
    assert SNAPSHOT_FORMAT == 1  # bump this test alongside the format


def test_load_rejects_corrupt_payload(tiny_dblp, tmp_path):
    # Claim more nonzeros than the pooled buffers actually hold: the
    # loader must fail loudly, not serve silently truncated matrices.
    path = str(tmp_path / "corrupt.npz")
    session = SimilaritySession(tiny_dblp)
    session.prepare(algorithm="pathsim", pattern="p-in.p-in-", top_k=5)
    save_snapshot(path, session)

    def inflate(manifest):
        matrices = [dict(entry) for entry in manifest["matrices"]]
        matrices[-1]["nnz"] = matrices[-1]["nnz"] + 1_000_000
        return dict(manifest, matrices=matrices)

    _rewrite_manifest(path, inflate)
    with pytest.raises(SnapshotError, match="corrupt snapshot payload"):
        load_session(path)


def _rewrite_manifest(path, transform):
    archive = np.load(path, allow_pickle=False)
    with archive:
        arrays = {name: archive[name] for name in archive.files}
    manifest = transform(json.loads(str(arrays["manifest"])))
    arrays["manifest"] = np.array(json.dumps(manifest))
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)
    with zipfile.ZipFile(path) as check:  # still a well-formed archive
        assert "manifest.npy" in check.namelist()
