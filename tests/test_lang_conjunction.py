"""Tests for the conjunctive-RRE extension (Section 4.2, last paragraph).

The paper notes that cyclic constraint premises need a conjunction
operator in the relationship language, at extra evaluation cost, and
that Theorem 2 then extends to general tgds.  We implement ``&`` with
Hadamard-product counting semantics and verify the key properties.
"""

import pytest

from repro.graph import GraphDatabase, Schema
from repro.lang import (
    CommutingMatrixEngine,
    Conj,
    conj,
    enumerate_instances,
    parse_pattern,
    simplify,
)
from repro.lang.ast import Label


def test_parse_conjunction_lowest_precedence():
    pattern = parse_pattern("a.b&c+d")
    assert isinstance(pattern, Conj)
    assert len(pattern.parts) == 2


def test_conjunction_round_trip():
    for text in ["a&b", "a.b&c-", "(a&b).c", "<<a&b>>", "[a&b-]"]:
        assert parse_pattern(str(parse_pattern(text))) == parse_pattern(text)


def test_conj_flattens():
    pattern = Conj([Conj([Label("a"), Label("b")]), Label("c")])
    assert len(pattern.parts) == 3


def test_conj_helper_single_arg():
    assert conj(Label("a")) == Label("a")
    with pytest.raises(ValueError):
        conj()


def test_conj_requires_two_parts():
    with pytest.raises(ValueError):
        Conj([Label("a")])


def test_conj_reverse_memberwise():
    pattern = parse_pattern("a.b&c")
    assert str(pattern.reverse()) == "b-.a-&c-"


def test_conjunction_counts_multiply(tiny_db):
    """|I(p1 & p2)(u,v)| = |I(p1)(u,v)| * |I(p2)(u,v)|."""
    engine = CommutingMatrixEngine(tiny_db)
    p1 = parse_pattern("a.b")
    p2 = parse_pattern("b+a.b")
    both = engine.matrix(conj(p1, p2))
    expected = engine.matrix(p1).multiply(engine.matrix(p2))
    assert abs(both - expected).max() == 0


def test_conjunction_enumeration_matches_matrix(tiny_db):
    engine = CommutingMatrixEngine(tiny_db)
    pattern = parse_pattern("a.b&(b+a.b)")
    instances = enumerate_instances(tiny_db, pattern)
    matrix = engine.matrix(pattern)
    indexer = engine.indexer
    for u in tiny_db.nodes():
        for v in tiny_db.nodes():
            assert matrix[
                indexer.index_of(u), indexer.index_of(v)
            ] == instances.count(u, v)


def test_conjunction_requires_both(tiny_db):
    # (1, a, 2) exists but (1, b.?, 2)... use a & c: node 1 has a-edges
    # but no c-edges, so the conjunction is empty at (1, *).
    instances = enumerate_instances(tiny_db, parse_pattern("a&c"))
    assert instances.count(1, 2) == 0
    assert instances.total() == 0  # a and c never share endpoints


def test_conjunction_reverse_instances(tiny_db):
    forward = enumerate_instances(tiny_db, parse_pattern("a&(a+b)"))
    backward = enumerate_instances(tiny_db, parse_pattern("(a&(a+b))-"))
    assert {(v, u) for u, v in forward.pairs()} == backward.pairs()
    for u, v in forward.pairs():
        assert forward.count(u, v) == backward.count(v, u)


def test_conjunction_in_rpq_boolean_eval(tiny_db):
    from repro.constraints import rpq_pairs

    pairs = rpq_pairs(tiny_db, parse_pattern("a&b"))
    # a and b edges coexist only on (1, 2).
    assert pairs == {(1, 2)}


def test_cyclic_premise_expressible_as_conjunctive_rre(tiny_db):
    """The Section-4.2 motivation: a cyclic premise's endpoint relation
    can be captured with & where plain RREs cannot avoid double-counting
    the two branches independently."""
    from repro.constraints import rpq_pairs

    # "x and y connected by both a-then-b and directly by b" is the
    # premise graph x ->a w ->b y with a chord x ->b y (a cycle).
    chord = rpq_pairs(tiny_db, parse_pattern("a.b&b"))
    direct_b = rpq_pairs(tiny_db, parse_pattern("b"))
    through = rpq_pairs(tiny_db, parse_pattern("a.b"))
    assert chord == direct_b & through


def test_conjunction_simplifies_members():
    assert str(simplify(parse_pattern("a--&<<b>>"))) == "a&b"


def test_conjunction_not_deduplicated_by_simplify():
    # p & p squares the counts; simplify must not collapse it.
    pattern = parse_pattern("a.b&a.b")
    assert str(simplify(pattern)) == "a.b&a.b"


def test_conjunction_counts_square_for_self_conj(tiny_db):
    engine = CommutingMatrixEngine(tiny_db)
    single = engine.matrix(parse_pattern("a.b"))
    squared = engine.matrix(parse_pattern("a.b&a.b"))
    assert abs(squared - single.multiply(single)).max() == 0


def test_map_pattern_commutes_with_conjunction(fig1):
    from repro.transform import dblp2sigm, map_pattern

    mapping = dblp2sigm()
    mapped = map_pattern(mapping, parse_pattern("r-a&p-in.<<p-in->>.r-a"))
    assert str(mapped) == (
        "<<p-in.r-a>>&p-in.<<p-in->>.<<p-in.r-a>>"
    )


def test_theorem2_extends_to_conjunctive_patterns(fig1):
    """Counts of conjunctive patterns are preserved across DBLP2SIGM."""
    from repro.graph import MatrixView, NodeIndexer
    from repro.transform import dblp2sigm, map_pattern

    mapping = dblp2sigm()
    pattern = parse_pattern("r-a.r-a-&p-in.p-in-")
    mapped = map_pattern(mapping, pattern)
    variant = mapping.apply(fig1)
    indexer = NodeIndexer(fig1.nodes())
    source = CommutingMatrixEngine(MatrixView(fig1, indexer)).matrix(pattern)
    target = CommutingMatrixEngine(MatrixView(variant, indexer)).matrix(mapped)
    assert abs(source - target).max() == 0
