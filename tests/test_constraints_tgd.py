"""Unit tests for tgd/egd representation and parsing."""

import pytest

from repro.constraints import Atom, Egd, Tgd, parse_tgd
from repro.exceptions import ConstraintError
from repro.lang import parse_pattern


def test_atom_accepts_string_pattern():
    atom = Atom("x", "a.b", "y")
    assert atom.pattern == parse_pattern("a.b")


def test_atom_variables_and_labels():
    atom = Atom("x", "a.b-", "y")
    assert atom.variables() == {"x", "y"}
    assert atom.labels() == {"a", "b"}


def test_atom_rename_partial():
    atom = Atom("x", "a", "y")
    renamed = atom.rename({"x": "n1"})
    assert renamed.source == "n1"
    assert renamed.target == "y"


def test_atom_equality_and_str():
    assert Atom("x", "a", "y") == Atom("x", "a", "y")
    assert str(Atom("x", "a", "y")) == "(x, a, y)"


def test_parse_tgd_roundtrip():
    text = "(x1, r-a, x3) & (x1, p-in, x4) & (x2, p-in, x4) -> (x2, r-a, x3)"
    tgd = parse_tgd(text)
    assert isinstance(tgd, Tgd)
    assert len(tgd.premise) == 3
    assert parse_tgd(str(tgd)) == tgd


def test_parse_tgd_with_complex_rpq():
    tgd = parse_tgd("(x, a.b-, y) -> (x, c, y)")
    assert tgd.premise[0].pattern == parse_pattern("a.b-")


def test_parse_egd():
    egd = parse_tgd("(x, a, y) & (x, a, z) -> y = z")
    assert isinstance(egd, Egd)
    assert egd.left == "y"
    assert egd.right == "z"
    assert parse_tgd(str(egd)) == egd


def test_egd_equality_variables_must_be_in_premise():
    with pytest.raises(ConstraintError):
        parse_tgd("(x, a, y) -> x = w")


def test_parse_requires_arrow():
    with pytest.raises(ConstraintError):
        parse_tgd("(x, a, y)")


def test_parse_bad_atom():
    with pytest.raises(ConstraintError):
        parse_tgd("(x, a) -> (x, b, y)")


def test_existential_variables():
    tgd = parse_tgd("(x, a, y) -> (x, b, z)")
    assert tgd.existential_variables() == {"z"}
    assert not tgd.is_full()


def test_full_tgd():
    tgd = parse_tgd("(x, a, y) -> (x, b, y)")
    assert tgd.is_full()


def test_label_sets():
    tgd = parse_tgd("(x, a, y) & (y, b, z) -> (x, c, z)")
    assert tgd.labels() == {"a", "b", "c"}
    assert tgd.premise_labels() == {"a", "b"}
    assert tgd.conclusion_labels() == {"c"}


def test_trivial_identity():
    assert parse_tgd("(x, a, y) -> (x, a, y)").is_trivial()


def test_trivial_conclusion_subset_of_premise():
    assert parse_tgd("(x, a, y) & (y, b, z) -> (y, b, z)").is_trivial()


def test_nontrivial():
    assert not parse_tgd("(x, a, y) -> (y, a, x)").is_trivial()


def test_empty_premise_rejected():
    with pytest.raises(ConstraintError):
        Tgd([], [Atom("x", "a", "y")])


def test_empty_conclusion_rejected():
    with pytest.raises(ConstraintError):
        Tgd([Atom("x", "a", "y")], [])


def test_tgd_hashable():
    a = parse_tgd("(x, a, y) -> (x, b, y)")
    b = parse_tgd("(x, a, y) -> (x, b, y)")
    assert len({a, b}) == 1
