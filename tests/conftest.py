"""Shared fixtures: the Figure-1 running example and small generators."""

import pytest

from repro.datasets import (
    figure1_dblp,
    generate_biomed_small,
    generate_dblp_small,
    generate_mas,
    generate_wsu,
)
from repro.graph import GraphDatabase, Schema


@pytest.fixture
def fig1():
    """The exact DBLP fragment of the paper's Figure 1(a)."""
    return figure1_dblp()


@pytest.fixture
def tiny_schema():
    return Schema(["a", "b", "c"])


@pytest.fixture
def tiny_db(tiny_schema):
    """A small hand-made graph exercising every structural situation:
    fan-out, fan-in, a 2-cycle on label c, parallel labels, self loop."""
    db = GraphDatabase(tiny_schema)
    db.add_edges(
        [
            (1, "a", 2),
            (1, "a", 3),
            (2, "b", 4),
            (3, "b", 4),
            (4, "c", 5),
            (5, "c", 4),
            (1, "b", 2),
            (2, "a", 2),
        ]
    )
    return db


@pytest.fixture(scope="session")
def dblp_small():
    return generate_dblp_small(seed=7)


@pytest.fixture(scope="session")
def wsu_bundle():
    return generate_wsu(seed=7)


@pytest.fixture(scope="session")
def biomed_bundle():
    return generate_biomed_small(seed=7)


@pytest.fixture(scope="session")
def mas_bundle():
    return generate_mas(seed=7)
