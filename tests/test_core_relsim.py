"""Tests for the RelSim algorithm (the core contribution)."""

import pytest

from repro.core import RelSim
from repro.datasets.schemas import BIOMED_SCHEMA, DBLP_SCHEMA
from repro.exceptions import EvaluationError
from repro.lang import CommutingMatrixEngine, parse_pattern
from repro.similarity import PathSim


def test_single_pattern_matches_pathsim(fig1):
    """With one simple pattern and PathSim scoring, RelSim == PathSim."""
    pattern = "r-a-.p-in.p-in-.r-a"
    relsim = RelSim(fig1, pattern)
    pathsim = PathSim(fig1, pattern)
    assert relsim.scores("DataMining") == pathsim.scores("DataMining")


def test_rre_pattern_supported(fig1):
    relsim = RelSim(fig1, "<<r-a-.p-in>>.<<p-in-.r-a>>")
    ranking = relsim.rank("DataMining")
    assert ranking.top()[0] == "Databases"


def test_example5_resolution(fig1):
    """The paper's Examples 5/6: the skip-collapsed pattern measures area
    similarity by *shared conferences only* — Data Mining shares exactly
    one conference with each of Databases (VLDB) and Software Engineering
    (SIGKDD), so they come out equally similar, unlike the paper-counting
    pattern which prefers Databases."""
    collapsed = RelSim(fig1, "<<r-a-.p-in>>.<<p-in-.r-a>>").scores(
        "DataMining"
    )
    assert collapsed["Databases"] == pytest.approx(
        collapsed["SoftwareEngineering"]
    )
    counting = RelSim(fig1, "r-a-.p-in.p-in-.r-a").scores("DataMining")
    assert counting["Databases"] > counting["SoftwareEngineering"]


def test_multiple_patterns_aggregate_by_sum(fig1):
    p1 = "r-a-.p-in.p-in-.r-a"
    p2 = "<<r-a-.p-in>>.<<p-in-.r-a>>"
    combined = RelSim(fig1, [p1, p2]).scores("DataMining")
    single1 = RelSim(fig1, p1).scores("DataMining")
    single2 = RelSim(fig1, p2).scores("DataMining")
    for node in combined:
        assert combined[node] == pytest.approx(single1[node] + single2[node])


def test_duplicate_patterns_deduplicated(fig1):
    pattern = "r-a-.r-a"
    relsim = RelSim(fig1, [pattern, pattern])
    assert len(relsim.patterns) == 1


def test_empty_pattern_list_rejected(fig1):
    with pytest.raises(EvaluationError):
        RelSim(fig1, [])


def test_unknown_scoring_rejected(fig1):
    with pytest.raises(EvaluationError):
        RelSim(fig1, "r-a", scoring="bm25")


def test_count_scoring(fig1):
    relsim = RelSim(fig1, "r-a-.r-a", scoring="count")
    scores = relsim.scores("DataMining")
    # DataMining shares 2 papers with Databases, 1 with SE.
    assert scores["Databases"] == 2.0
    assert scores["SoftwareEngineering"] == 1.0


def test_cosine_scoring_bounded(fig1):
    relsim = RelSim(fig1, "r-a-.r-a", scoring="cosine")
    scores = relsim.scores("DataMining")
    assert all(0.0 <= s <= 1.0 + 1e-9 for s in scores.values())


def test_cosine_scoring_zero_row(fig1):
    fig1.add_node("EmptyArea", "area")
    relsim = RelSim(fig1, "r-a-.r-a", scoring="cosine")
    scores = relsim.scores("EmptyArea")
    assert all(s == 0.0 for s in scores.values())


def test_answer_type_override(biomed_bundle):
    db = biomed_bundle.database
    relsim = RelSim(
        db,
        "dd-ph-indirect.ph-pr-assoc.targets-",
        scoring="cosine",
        answer_type="drug",
    )
    query = next(iter(biomed_bundle.ground_truth))
    ranking = relsim.rank(query, top_k=5)
    assert all(db.node_type(n) == "drug" for n in ranking.top())


def test_effectiveness_on_planted_ground_truth(biomed_bundle):
    """RelSim must rank the planted relevant drug highly (Table 3)."""
    from repro.eval import mean_reciprocal_rank

    db = biomed_bundle.database
    relsim = RelSim(
        db,
        "dd-ph-indirect.ph-pr-assoc.targets-",
        scoring="cosine",
        answer_type="drug",
    )
    rankings = {
        q: relsim.rank(q).top() for q in biomed_bundle.ground_truth
    }
    mrr = mean_reciprocal_rank(rankings, biomed_bundle.ground_truth)
    assert mrr > 0.3


def test_from_simple_pattern_uses_schema_constraints(fig1):
    relsim = RelSim.from_simple_pattern(fig1, "r-a-.p-in.p-in-.r-a")
    assert len(relsim.patterns) > 1
    assert str(relsim.patterns[0]) == "r-a-.p-in.p-in-.r-a"


def test_from_simple_pattern_explicit_constraints(fig1):
    relsim = RelSim.from_simple_pattern(
        fig1, "r-a-.p-in.p-in-.r-a", constraints=[]
    )
    assert len(relsim.patterns) == 1


def test_shared_engine(fig1):
    engine = CommutingMatrixEngine(fig1)
    relsim = RelSim(fig1, "r-a-.r-a", engine=engine)
    relsim.rank("DataMining")
    assert engine.cache_size() > 0


def test_rejects_non_pattern(fig1):
    with pytest.raises(TypeError):
        RelSim(fig1, [3.14])
