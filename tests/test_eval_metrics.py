"""Tests for ranking metrics (Kendall tau, MRR)."""

import pytest

from repro.eval import (
    average_top_k_tau,
    kendall_tau_distance,
    mean_reciprocal_rank,
    normalized_kendall_tau,
    reciprocal_rank,
)


# ----------------------------------------------------------------------
# Kendall tau
# ----------------------------------------------------------------------
def test_identical_lists_zero():
    assert normalized_kendall_tau(["a", "b", "c"], ["a", "b", "c"]) == 0.0


def test_reversed_lists_one():
    assert normalized_kendall_tau(["a", "b", "c"], ["c", "b", "a"]) == 1.0


def test_empty_lists_identical():
    assert normalized_kendall_tau([], []) == 0.0


def test_single_swap():
    tau = normalized_kendall_tau(["a", "b", "c"], ["b", "a", "c"])
    assert tau == pytest.approx(1.0 / 3.0)


def test_bounded_between_zero_and_one():
    tau = normalized_kendall_tau(["a", "b"], ["c", "d"])
    assert 0.0 <= tau <= 1.0


def test_disjoint_lists_use_penalty():
    # {a,b} vs {c,d}: pairs (a,b) ordered only in list1 -> penalty;
    # (c,d) ordered only in list2 -> penalty; (a,c),(a,d),(b,c),(b,d):
    # each list ranks its own member above the absent one, and they
    # disagree -> discordant.
    tau = normalized_kendall_tau(["a", "b"], ["c", "d"], penalty=0.5)
    assert tau == pytest.approx((0.5 + 0.5 + 4.0) / 6.0)


def test_partial_overlap():
    tau = normalized_kendall_tau(["a", "b"], ["a", "c"])
    # pairs: (a,b): list1 a<b, list2 a present b absent -> a first: agree.
    # (a,c): list2 a<c, list1 a present c absent -> agree.
    # (b,c): list1 says b first, list2 says c first -> discordant.
    assert tau == pytest.approx(1.0 / 3.0)


def test_penalty_parameter_zero():
    tau = normalized_kendall_tau(["a"], ["b"], penalty=0.0)
    assert tau == 1.0  # single cross pair is discordant regardless


def test_distance_unnormalized():
    assert kendall_tau_distance(["a", "b"], ["b", "a"]) == 1.0
    assert kendall_tau_distance(["a", "b"], ["a", "b"]) == 0.0


def test_symmetry():
    a, b = ["a", "b", "c"], ["b", "d", "a"]
    assert normalized_kendall_tau(a, b) == pytest.approx(
        normalized_kendall_tau(b, a)
    )


def test_average_top_k_tau_truncates():
    rankings_a = {"q": ["a", "b", "c", "d"]}
    rankings_b = {"q": ["a", "b", "d", "c"]}
    assert average_top_k_tau(rankings_a, rankings_b, k=2) == 0.0
    assert average_top_k_tau(rankings_a, rankings_b, k=4) > 0.0


def test_average_top_k_tau_multiple_queries():
    rankings_a = {"q1": ["a", "b"], "q2": ["a", "b"]}
    rankings_b = {"q1": ["a", "b"], "q2": ["b", "a"]}
    assert average_top_k_tau(rankings_a, rankings_b, k=2) == pytest.approx(0.5)


def test_average_top_k_tau_intersects_queries():
    rankings_a = {"q1": ["a"], "orphan": ["x"]}
    rankings_b = {"q1": ["a"]}
    assert average_top_k_tau(rankings_a, rankings_b, k=1) == 0.0


def test_average_top_k_tau_no_common_queries():
    assert average_top_k_tau({"a": []}, {"b": []}, k=5) == 0.0


# ----------------------------------------------------------------------
# MRR
# ----------------------------------------------------------------------
def test_reciprocal_rank_first():
    assert reciprocal_rank(["x", "y"], "x") == 1.0


def test_reciprocal_rank_later():
    assert reciprocal_rank(["x", "y", "z"], "z") == pytest.approx(1.0 / 3.0)


def test_reciprocal_rank_absent():
    assert reciprocal_rank(["x", "y"], "nope") == 0.0


def test_reciprocal_rank_multiple_relevant():
    assert reciprocal_rank(["x", "y", "z"], {"z", "y"}) == 0.5


def test_mean_reciprocal_rank():
    rankings = {"q1": ["a", "b"], "q2": ["b", "a"]}
    truth = {"q1": "a", "q2": "a"}
    assert mean_reciprocal_rank(rankings, truth) == pytest.approx(0.75)


def test_mean_reciprocal_rank_missing_query_counts_zero():
    rankings = {"q1": ["a"]}
    truth = {"q1": "a", "q2": "a"}
    assert mean_reciprocal_rank(rankings, truth) == pytest.approx(0.5)


def test_mean_reciprocal_rank_empty_truth():
    assert mean_reciprocal_rank({}, {}) == 0.0
