"""Unit tests for the RRE parser (tokenizer + grammar + round trips)."""

import pytest

from repro.exceptions import PatternSyntaxError
from repro.lang import (
    EPSILON,
    Concat,
    Label,
    Nested,
    Reverse,
    Skip,
    Star,
    Union,
    parse_pattern,
    tokenize,
)


def test_single_label():
    assert parse_pattern("a") == Label("a")


def test_hyphenated_label():
    assert parse_pattern("published-in") == Label("published-in")


def test_trailing_dash_is_reverse():
    assert parse_pattern("published-in-") == Reverse(Label("published-in"))


def test_double_reverse_token():
    assert parse_pattern("a--") == Reverse(Reverse(Label("a")))


def test_concat_with_dot():
    assert parse_pattern("a.b") == Concat([Label("a"), Label("b")])


def test_concat_with_middle_dot():
    assert parse_pattern("a·b") == Concat([Label("a"), Label("b")])


def test_union_lowest_precedence():
    pattern = parse_pattern("a.b+c")
    assert isinstance(pattern, Union)
    assert pattern.parts[0] == Concat([Label("a"), Label("b")])


def test_parentheses_override():
    pattern = parse_pattern("a.(b+c)")
    assert isinstance(pattern, Concat)
    assert isinstance(pattern.parts[1], Union)


def test_star_binds_tighter_than_concat():
    pattern = parse_pattern("a.b*")
    assert pattern == Concat([Label("a"), Star(Label("b"))])


def test_reverse_after_group():
    pattern = parse_pattern("(a.b)-")
    assert pattern == Reverse(Concat([Label("a"), Label("b")]))


def test_nested_brackets():
    assert parse_pattern("[a.b]") == Nested(Concat([Label("a"), Label("b")]))


def test_skip_brackets():
    assert parse_pattern("<<a>>") == Skip(Label("a"))


def test_nested_inside_concat():
    pattern = parse_pattern("field.[published-in-].field-")
    assert isinstance(pattern, Concat)
    assert isinstance(pattern.parts[1], Nested)


def test_epsilon_keyword():
    assert parse_pattern("eps") == EPSILON


def test_whitespace_tolerated():
    assert parse_pattern(" a . b ") == parse_pattern("a.b")


def test_star_of_group():
    assert parse_pattern("(a.b)*") == Star(Concat([Label("a"), Label("b")]))


@pytest.mark.parametrize(
    "text",
    [
        "a.b",
        "a.b-",
        "published-in.published-in-",
        "a+b+c",
        "(a+b).c",
        "[a.b-].c",
        "<<a.b>>.c-",
        "a*.b",
        "<<r-a-.p-in->>.p-in.p-in-.<<p-in.r-a>>",
        "field.[published-in-].[published-in-].field-",
        "eps",
        "(a.[b.<<c>>])-",
    ],
)
def test_round_trip(text):
    pattern = parse_pattern(text)
    assert parse_pattern(str(pattern)) == pattern


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "   ",
        ".a",
        "a.",
        "a..b",
        "(a",
        "a)",
        "[a",
        "<<a>",
        "a>>",
        "+a",
        "a+",
        "a b",
        "a ? b",
        "-a",
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(PatternSyntaxError):
        parse_pattern(bad)


def test_error_reports_position():
    with pytest.raises(PatternSyntaxError) as excinfo:
        parse_pattern("a.?")
    assert excinfo.value.position == 2


def test_non_string_input():
    with pytest.raises(PatternSyntaxError):
        parse_pattern(42)


def test_tokenizer_hyphen_lookahead():
    kinds = [t.kind for t in tokenize("p-in-.r-a")]
    assert kinds == ["LABEL", "-", ".", "LABEL", "EOF"]


def test_tokenizer_skip_tokens():
    kinds = [t.kind for t in tokenize("<<a>>")]
    assert kinds == ["<<", "LABEL", ">>", "EOF"]
