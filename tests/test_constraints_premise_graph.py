"""Unit tests for premise graphs (Section 5)."""

import pytest

from repro.constraints import PremiseGraph, normalize_atoms, parse_tgd
from repro.constraints.tgd import Atom
from repro.exceptions import CyclicPremiseError
from repro.lang import parse_pattern
from repro.lang.ast import Label, Reverse


DBLP_TGD = parse_tgd(
    "(x1, r-a, x3) & (x1, p-in, x4) & (x2, p-in, x4) -> (x2, r-a, x3)"
)


def test_normalize_atoms_splits_concat():
    atoms = normalize_atoms([Atom("x", "a.b", "y")])
    assert len(atoms) == 2
    (s1, p1, t1), (s2, p2, t2) = atoms
    assert s1 == "x" and t2 == "y" and t1 == s2
    assert p1 == Label("a") and p2 == Label("b")


def test_normalize_atoms_pushes_reverse_inward():
    atoms = normalize_atoms([Atom("x", "(a.b)-", "y")])
    assert len(atoms) == 2
    # (x, (a.b)-, y) means a path a.b from y to x.
    (s1, p1, t1), (s2, p2, t2) = atoms
    assert s1 == "y" and t2 == "x"


def test_normalize_atoms_keeps_single_steps():
    atoms = normalize_atoms([Atom("x", "a-", "y")])
    assert atoms == [("x", Reverse(Label("a")), "y")]


def test_premise_graph_structure():
    graph = PremiseGraph(DBLP_TGD)
    assert graph.variables == {"x1", "x2", "x3", "x4"}
    assert len(graph.edges) == 3
    assert graph.degree("x1") == 2
    assert graph.degree("x4") == 2
    assert graph.degree("x3") == 1


def test_acyclic_detection():
    assert PremiseGraph(DBLP_TGD).is_acyclic()
    cyclic = parse_tgd("(x, a, y) & (y, b, z) & (z, c, x) -> (x, a, z)")
    assert not PremiseGraph(cyclic).is_acyclic()


def test_self_loop_is_cyclic():
    loop = parse_tgd("(x, a, x) -> (x, b, x)")
    assert not PremiseGraph(loop).is_acyclic()


def test_parallel_edges_are_cyclic():
    parallel = parse_tgd("(x, a, y) & (x, b, y) -> (x, c, y)")
    assert not PremiseGraph(parallel).is_acyclic()


def test_require_acyclic_raises():
    cyclic = parse_tgd("(x, a, y) & (y, b, x) -> (x, c, y)")
    with pytest.raises(CyclicPremiseError):
        PremiseGraph(cyclic).require_acyclic()


def test_find_path_unique_in_tree():
    graph = PremiseGraph(DBLP_TGD)
    steps = graph.find_path("x3", "x2")
    assert steps is not None
    pattern = graph.path_pattern(steps)
    assert str(pattern) == "r-a-.p-in.p-in-"


def test_find_path_same_node():
    graph = PremiseGraph(DBLP_TGD)
    assert graph.find_path("x1", "x1") == []


def test_find_path_disconnected():
    tgd = parse_tgd("(x, a, y) & (u, b, v) -> (x, a, v)")
    graph = PremiseGraph(tgd)
    assert graph.find_path("x", "u") is None


def test_edge_pattern_direction():
    graph = PremiseGraph(DBLP_TGD)
    edge_id = next(
        i for i, (s, p, t) in enumerate(graph.edges) if str(p) == "r-a"
    )
    assert str(graph.edge_pattern(edge_id, True)) == "r-a"
    assert str(graph.edge_pattern(edge_id, False)) == "r-a-"


def test_match_simple_pattern_forward():
    graph = PremiseGraph(DBLP_TGD)
    matches = graph.match_simple_pattern([("r-a", False)])
    assert ("x1", "x3") in matches


def test_match_simple_pattern_reverse_step():
    graph = PremiseGraph(DBLP_TGD)
    matches = graph.match_simple_pattern([("r-a", True)])
    assert ("x3", "x1") in matches


def test_match_simple_pattern_multi_step():
    graph = PremiseGraph(DBLP_TGD)
    matches = graph.match_simple_pattern(
        [("r-a", True), ("p-in", False), ("p-in", True)]
    )
    assert ("x3", "x2") in matches


def test_match_simple_pattern_does_not_reuse_edges():
    graph = PremiseGraph(DBLP_TGD)
    # p-in then p-in- through the same edge is not a valid match; through
    # the two different p-in edges it is.
    matches = graph.match_simple_pattern([("p-in", False), ("p-in", True)])
    assert ("x1", "x2") in matches
    assert ("x1", "x1") not in matches


def test_walk_matches_returns_paths():
    graph = PremiseGraph(DBLP_TGD)
    results = graph.walk_matches("x1", [("p-in", False)])
    assert len(results) == 1
    end, path = results[0]
    assert end == "x4"
    assert len(path) == 1
