"""The process worker pool: parity, migration, errors, and lifecycle.

Two layers of coverage for :mod:`repro.server.workers`:

* **In-process driving a real spawn pool** — run/run_many answers are
  bitwise-identical to the parent's prepared query, a live ``apply``
  migrates every worker to the re-published segment (old segment
  unlinked only afterwards), errors cross the pipe with their original
  type, and ``shutdown`` leaves zero ``/dev/shm`` entries behind.
* **Full subprocess lifecycle** — ``repro serve --workers 2`` as an
  operator runs it: answers ``/query`` and ``/apply`` through the pool,
  reports per-worker counters on ``/statz``, and a SIGTERM drain exits
  0 without leaking a single shared-memory segment.  This is what the
  CI ``workers-smoke`` job runs.

Spawn pays an interpreter + numpy import per worker, so the in-process
tests share one pool per module where the scenario allows it.
"""

import glob
import json
import os
import re
import signal
import subprocess
import sys
import http.client

import pytest

from repro.api.service import SimilarityService
from repro.datasets import generate_dblp
from repro.exceptions import ConfigurationError, UnknownNodeError, WorkerError
from repro.server.workers import WorkerPool

PATTERN = "r-a-.p-in.p-in-.r-a"
ANNOUNCE = re.compile(r"serving repro on http://([\d.]+):(\d+)")
SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _shm_entries():
    return set(glob.glob("/dev/shm/psm_*"))


@pytest.fixture(scope="module")
def stack():
    database = generate_dblp(3, 6, 36, 20, seed=11).database
    service = SimilarityService(database)
    prepared = service.prepare(
        algorithm="relsim",
        pattern=PATTERN,
        expand={"max_patterns": 8},
        top_k=5,
    )
    return database, service, prepared


def test_pool_rejects_zero_workers(stack):
    _, service, prepared = stack
    with pytest.raises(ConfigurationError):
        WorkerPool(prepared.export_spec(), service.session, workers=0)


def test_pool_parity_migration_errors_and_clean_shutdown(stack):
    """One pool, the whole contract: the expensive end-to-end pass."""
    database, service, prepared = stack
    shm_before = _shm_entries()
    queries = (
        sorted(database.nodes_of_type("area"))[:3]
        + sorted(database.nodes_of_type("proc"))[:3]
    )

    pool = WorkerPool(
        prepared.export_spec(), service.session,
        version=service.version, workers=2,
    )
    try:
        # The published segment exists and is the pool's only one.
        assert len(pool.segments()) == 1
        assert _shm_entries() - shm_before

        # run: bitwise-identical to the in-process prepared query.
        for query in queries:
            assert pool.run(query).items() == prepared.run(query).items()

        # run_many: shards across workers, merges to the same answers;
        # an explicit top_k overrides the prepared default everywhere.
        batched = pool.run_many(queries)
        direct = prepared.run_many(queries)
        assert set(batched) == set(direct)
        for query in queries:
            assert batched[query].items() == direct[query].items()
        full = pool.run_many(queries[:2], top_k=None)
        for query in queries[:2]:
            assert (
                full[query].items()
                == prepared.run(query, top_k=None).items()
            )

        # Both workers participated and report sane counters.
        stats = pool.stats()
        assert [entry["worker"] for entry in stats] == [0, 1]
        assert all(entry["alive"] for entry in stats)
        assert all(entry["version"] == service.version for entry in stats)
        assert sum(entry["completed"] for entry in stats) >= len(queries)

        # Errors keep their library type across the pipe (the HTTP
        # layer maps types to statuses; a worker must not change that).
        with pytest.raises(UnknownNodeError):
            pool.run("no-such-node")

        # Live update: the publish hook re-publishes and migrates every
        # worker; the old segment is gone, the new answers match a
        # freshly prepared query on the post-apply service.
        unregister = service.on_publish(pool.publish)
        old_segment = pool.segments()[0]
        papers = sorted(database.nodes_of_type("paper"))
        procs = sorted(database.nodes_of_type("proc"))
        version = service.apply(
            edges_added=[(papers[0], "p-in", procs[-1])], incremental=True
        )
        unregister()
        assert pool.version == version
        assert pool.segments() != [old_segment]
        assert all(
            entry["version"] == version for entry in pool.stats()
        )
        for query in queries:
            assert pool.run(query).items() == prepared.run(query).items()
    finally:
        pool.shutdown()

    # Zero-leak guarantee, and a closed pool refuses work.
    assert _shm_entries() == shm_before
    assert pool.segments() == []
    with pytest.raises(WorkerError):
        pool.run(queries[0])
    pool.shutdown()  # idempotent


# ----------------------------------------------------------------------
# Subprocess lifecycle: repro serve --workers 2
# ----------------------------------------------------------------------
def _spawn(arguments):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (os.path.abspath(SRC), env.get("PYTHONPATH"))
        if part
    )
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli"] + arguments,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def _await_announce(process):
    lines = []
    while True:
        line = process.stdout.readline()
        if not line:
            process.kill()
            raise AssertionError(
                "server exited before announcing: " + "".join(lines)
            )
        lines.append(line)
        match = ANNOUNCE.search(line)
        if match:
            return (match.group(1), int(match.group(2))), lines


def _call(address, method, path, payload=None, timeout=60):
    connection = http.client.HTTPConnection(*address, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def test_serve_with_workers_subprocess_lifecycle(tmp_path):
    database_path = str(tmp_path / "dblp.json")
    import io

    from repro.cli import main as cli_main

    assert (
        cli_main(
            [
                "generate", "--dataset", "dblp-small",
                "--seed", "3", "--out", database_path,
            ],
            out=io.StringIO(),
        )
        == 0
    )

    from repro.api import SimilaritySession
    from repro.graph.io import load_json

    database = load_json(database_path)
    session = SimilaritySession(database)
    prepared = session.prepare(algorithm="relsim", pattern=PATTERN, top_k=5)
    areas = sorted(database.nodes_of_type("area"))[:3]
    expected = {
        area: [[n, s] for n, s in prepared.run(area).items()]
        for area in areas
    }

    shm_before = _shm_entries()
    process = _spawn(
        [
            "serve", database_path,
            "--algorithm", "relsim", "--pattern", PATTERN,
            "--top", "5", "--port", "0", "--workers", "2",
        ]
    )
    try:
        address, _lines = _await_announce(process)

        # Queries flow through the worker pool and still match the
        # in-process reference answers exactly.
        for area in areas:
            status, payload = _call(
                address, "POST", "/query", {"node": area}
            )
            assert status == 200, payload
            assert payload["ranking"] == expected[area]

        # /statz exposes the pool: worker count, published version,
        # per-worker liveness and counters.
        status, stats = _call(address, "GET", "/statz")
        assert status == 200
        workers = stats["workers"]
        assert workers["count"] == 2
        assert workers["published_version"] == 1
        assert workers["completed"] >= len(areas)
        assert len(workers["per_worker"]) == 2
        assert all(entry["alive"] for entry in workers["per_worker"])

        # A live delta re-publishes; workers adopt the new version and
        # keep answering.
        papers = sorted(database.nodes_of_type("paper"))
        procs = sorted(database.nodes_of_type("proc"))
        status, applied = _call(
            address,
            "POST",
            "/apply",
            {"edges_added": [[papers[0], "p-in", procs[-1]]]},
        )
        assert status == 200 and applied["version"] == 2
        status, payload = _call(address, "POST", "/query", {"node": areas[0]})
        assert status == 200 and payload["version"] == 2
        status, stats = _call(address, "GET", "/statz")
        assert stats["workers"]["published_version"] == 2
        assert all(
            entry["version"] == 2
            for entry in stats["workers"]["per_worker"]
        )

        # The serving parent holds segments while alive.
        assert _shm_entries() - shm_before
    except BaseException:
        process.kill()
        process.communicate()
        raise

    process.send_signal(signal.SIGTERM)
    output, _ = process.communicate(timeout=60)
    assert process.returncode == 0, (
        "serve exited {} with output:\n{}".format(process.returncode, output)
    )
    # The zero-leak gate: a drained shutdown unlinks every segment.
    assert _shm_entries() == shm_before, output
