"""Tests for the request-coalescing micro-batcher.

Driven through plain ``asyncio.run`` coroutines (no asyncio test
plugin): each test builds a batcher on a fresh loop, fans out
``submit`` coroutines with ``asyncio.gather``, and asserts on the
recorded ``run_many`` calls and the resolved results.
"""

import asyncio

import pytest

from repro.api import SimilaritySession
from repro.exceptions import UnknownNodeError
from repro.server import CoalescingBatcher
from repro.server.batching import PREPARED_DEFAULT


class FakePrepared:
    """Records every run/run_many call; poisoned nodes raise."""

    def __init__(self, poisoned=()):
        self.poisoned = set(poisoned)
        self.batch_calls = []  # (nodes, kwargs)
        self.single_calls = []

    def run_many(self, nodes, **kwargs):
        self.batch_calls.append((list(nodes), dict(kwargs)))
        bad = [node for node in nodes if node in self.poisoned]
        if bad:
            raise UnknownNodeError("poisoned: {}".format(bad[0]))
        return {node: self._ranking(node, kwargs) for node in nodes}

    def run(self, node, **kwargs):
        self.single_calls.append((node, dict(kwargs)))
        if node in self.poisoned:
            raise UnknownNodeError("poisoned: {}".format(node))
        return self._ranking(node, kwargs)

    @staticmethod
    def _ranking(node, kwargs):
        return {"echo": node, "kwargs": dict(kwargs)}


def test_concurrent_submits_fold_into_one_run_many():
    fake = FakePrepared()
    batcher = CoalescingBatcher(fake, window=0.005)

    async def scenario():
        return await asyncio.gather(
            *(batcher.submit("node{}".format(i)) for i in range(8))
        )

    results = asyncio.run(scenario())
    assert [r["echo"] for r in results] == [
        "node{}".format(i) for i in range(8)
    ]
    assert len(fake.batch_calls) == 1
    nodes, kwargs = fake.batch_calls[0]
    assert nodes == ["node{}".format(i) for i in range(8)]
    assert kwargs == {}  # PREPARED_DEFAULT: no top_k override at all
    stats = batcher.stats()
    assert stats == {
        "requests": 8,
        "batches": 1,
        "largest_batch": 8,
        "isolated_errors": 0,
        "fallback_nodes": 0,
    }


def test_max_batch_flushes_without_waiting_for_window():
    fake = FakePrepared()
    # A window long enough that only the max_batch trigger can explain
    # a prompt flush.
    batcher = CoalescingBatcher(fake, window=60.0, max_batch=4)

    async def scenario():
        return await asyncio.wait_for(
            asyncio.gather(
                *(batcher.submit("n{}".format(i)) for i in range(4))
            ),
            timeout=10,
        )

    results = asyncio.run(scenario())
    assert len(results) == 4
    assert [len(nodes) for nodes, _ in fake.batch_calls] == [4]


def test_distinct_top_k_values_batch_separately():
    fake = FakePrepared()
    batcher = CoalescingBatcher(fake, window=0.005)

    async def scenario():
        return await asyncio.gather(
            batcher.submit("a"),
            batcher.submit("b", top_k=3),
            batcher.submit("c", top_k=3),
            batcher.submit("d", top_k=None),
        )

    default, b, c, full = asyncio.run(scenario())
    calls = {tuple(nodes): kwargs for nodes, kwargs in fake.batch_calls}
    assert calls == {
        ("a",): {},
        ("b", "c"): {"top_k": 3},
        ("d",): {"top_k": None},
    }
    assert default["kwargs"] == {}
    assert b["kwargs"] == c["kwargs"] == {"top_k": 3}
    assert full["kwargs"] == {"top_k": None}
    # One coalesced batch, three run_many groups inside it.
    assert batcher.stats()["batches"] == 1


def test_poisoned_request_fails_alone():
    fake = FakePrepared(poisoned={"bad"})
    batcher = CoalescingBatcher(fake, window=0.005)

    async def scenario():
        return await asyncio.gather(
            batcher.submit("good1"),
            batcher.submit("bad"),
            batcher.submit("good2"),
            return_exceptions=True,
        )

    good1, bad, good2 = asyncio.run(scenario())
    assert good1["echo"] == "good1"
    assert good2["echo"] == "good2"
    assert isinstance(bad, UnknownNodeError)
    # The batch ran once, failed, and was retried per node.
    assert len(fake.batch_calls) == 1
    assert [node for node, _ in fake.single_calls] == [
        "good1", "bad", "good2",
    ]
    assert batcher.stats()["isolated_errors"] == 1
    # Every request in the poisoned batch went through per-node retry.
    assert batcher.stats()["fallback_nodes"] == 3


def test_zero_window_still_coalesces_same_pass_arrivals():
    fake = FakePrepared()
    batcher = CoalescingBatcher(fake, window=0.0)

    async def scenario():
        return await asyncio.gather(
            *(batcher.submit("n{}".format(i)) for i in range(6))
        )

    results = asyncio.run(scenario())
    assert len(results) == 6
    stats = batcher.stats()
    assert stats["batches"] < stats["requests"], (
        "window=0 should still fold same-pass arrivals"
    )


def test_sequential_submits_each_get_fresh_windows():
    fake = FakePrepared()
    batcher = CoalescingBatcher(fake, window=0.0)

    async def scenario():
        first = await batcher.submit("one")
        second = await batcher.submit("two")
        return first, second

    first, second = asyncio.run(scenario())
    assert (first["echo"], second["echo"]) == ("one", "two")
    assert batcher.stats()["batches"] == 2
    assert batcher.queued == 0


def test_constructor_validation():
    with pytest.raises(ValueError, match="window"):
        CoalescingBatcher(FakePrepared(), window=-0.001)
    with pytest.raises(ValueError, match="max_batch"):
        CoalescingBatcher(FakePrepared(), max_batch=0)


def test_batched_results_match_direct_runs_on_real_prepared(fig1):
    """Identity guarantee: coalescing never changes a response."""
    session = SimilaritySession(fig1)
    prepared = session.prepare(
        algorithm="relsim", pattern="r-a-.p-in.p-in-.r-a", top_k=1
    )
    queries = ["DataMining", "Databases", "SoftwareEngineering"]
    batcher = CoalescingBatcher(prepared, window=0.005)

    async def scenario():
        defaults = asyncio.gather(*(batcher.submit(q) for q in queries))
        fulls = asyncio.gather(
            *(batcher.submit(q, top_k=None) for q in queries)
        )
        return await defaults, await fulls

    defaults, fulls = asyncio.run(scenario())
    for query, ranking in zip(queries, defaults):
        assert ranking.items() == prepared.run(query).items()
        assert len(ranking.items()) == 1
    for query, ranking in zip(queries, fulls):
        assert ranking.items() == prepared.run(query, top_k=None).items()
    # top_k=None really means "full": at least one query has more
    # neighbors than the prepared default of 1.
    assert any(len(ranking.items()) > 1 for ranking in fulls)


def test_prepared_default_sentinel_is_not_none():
    assert PREPARED_DEFAULT is not None
