"""Unit tests for the enumeration semantics (the paper's I_D(p))."""

import pytest

from repro.exceptions import StarDivergenceError
from repro.graph import GraphDatabase, Schema
from repro.lang import parse_pattern
from repro.lang.semantics import (
    enumerate_instances,
    join_sequences,
    reverse_sequence,
    reverse_step,
)


def count(db, text, u, v):
    return enumerate_instances(db, parse_pattern(text)).count(u, v)


def test_epsilon_instances(tiny_db):
    instances = enumerate_instances(tiny_db, parse_pattern("eps"))
    assert instances.total() == tiny_db.num_nodes()
    assert instances.count(1, 1) == 1
    assert instances.count(1, 2) == 0


def test_label_instances(tiny_db):
    instances = enumerate_instances(tiny_db, parse_pattern("a"))
    assert instances.count(1, 2) == 1
    assert instances.count(1, 3) == 1
    assert instances.count(2, 4) == 0


def test_label_sequence_records_traversal(tiny_db):
    instances = enumerate_instances(tiny_db, parse_pattern("a"))
    assert instances.sequences(1, 2) == {(("n", 1), ("s", "a"), ("n", 2))}


def test_reverse_instances(tiny_db):
    instances = enumerate_instances(tiny_db, parse_pattern("a-"))
    assert instances.count(2, 1) == 1
    assert instances.count(1, 2) == 0


def test_concat_counts_paths(tiny_db):
    # 1 -a-> {2,3} -b-> 4: two a.b paths from 1 to 4.
    assert count(tiny_db, "a.b", 1, 4) == 2


def test_union_counts(tiny_db):
    # 1 -a-> 2 and 1 -b-> 2.
    assert count(tiny_db, "a+b", 1, 2) == 2


def test_union_of_identical_patterns_is_single(tiny_db):
    assert count(tiny_db, "a+a", 1, 2) == 1


def test_skip_collapses_multiplicity(tiny_db):
    assert count(tiny_db, "<<a.b>>", 1, 4) == 1
    # Node 3 has no outgoing a-edge, so no a.b path starts there.
    assert count(tiny_db, "<<a.b>>", 3, 4) == 0


def test_skip_records_flattened_pattern(tiny_db):
    instances = enumerate_instances(tiny_db, parse_pattern("<<a.b>>"))
    assert instances.sequences(1, 4) == {(("n", 1), ("s", "a.b"), ("n", 4))}


def test_nested_counts_outgoing_instances(tiny_db):
    # [a] at node 1 counts the two outgoing a-instances.
    assert count(tiny_db, "[a]", 1, 1) == 2
    assert count(tiny_db, "[a]", 3, 3) == 0


def test_nested_is_diagonal_only(tiny_db):
    instances = enumerate_instances(tiny_db, parse_pattern("[a]"))
    assert all(u == v for u, v in instances.pairs())


def test_star_on_acyclic_label(tiny_db):
    # b edges: 2->4, 3->4, 1->2.  b* from 1: eps, 1->2, 1->2->4.
    assert count(tiny_db, "b*", 1, 1) == 1
    assert count(tiny_db, "b*", 1, 2) == 1
    assert count(tiny_db, "b*", 1, 4) == 1


def test_star_diverges_on_cycle(tiny_db):
    # c edges form the cycle 4 <-> 5.
    with pytest.raises(StarDivergenceError):
        enumerate_instances(tiny_db, parse_pattern("c*"))


def test_star_depth_bound_respected(tiny_db):
    with pytest.raises(StarDivergenceError):
        enumerate_instances(tiny_db, parse_pattern("c*"), max_star_depth=3)


def test_self_loop_concat(tiny_db):
    # 2 -a-> 2 self loop: a.a from 1 reaches 2 via loop.
    assert count(tiny_db, "a.a", 1, 2) == 1


def test_reverse_step_involutive():
    assert reverse_step("a") == "a-"
    assert reverse_step("a-") == "a"
    assert reverse_step(reverse_step("p-in")) == "p-in"


def test_reverse_sequence():
    sequence = (("n", 1), ("s", "a"), ("n", 2))
    assert reverse_sequence(sequence) == (("n", 2), ("s", "a-"), ("n", 1))
    assert reverse_sequence(reverse_sequence(sequence)) == sequence


def test_join_sequences_requires_shared_endpoint():
    first = (("n", 1), ("s", "a"), ("n", 2))
    second = (("n", 2), ("s", "b"), ("n", 3))
    joined = join_sequences(first, second)
    assert joined == (("n", 1), ("s", "a"), ("n", 2), ("s", "b"), ("n", 3))
    with pytest.raises(ValueError):
        join_sequences(first, first)


def test_pattern_type_checked(tiny_db):
    with pytest.raises(TypeError):
        enumerate_instances(tiny_db, "a")


def test_count_matrix_dict(tiny_db):
    from repro.lang import count_matrix_dict

    counts = count_matrix_dict(tiny_db, parse_pattern("a"))
    assert counts[(1, 2)] == 1
    assert (2, 4) not in counts
