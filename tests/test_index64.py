"""64-bit index safety regression tests.

SciPy builds CSR matrices with int32 indices while nnz fits, and
upcasts to int64 past 2^31 entries.  The engine's direct buffer readers
(``dense_rows``, ``pathsim_rows``, the ``_fast_csr`` constructor) and
the snapshot warm-start path must therefore be dtype-agnostic: the same
graph served through int64-index matrices has to produce bitwise
identical rankings.  (The linter's ``int32-index`` rule bans the
opposite bug — hand-building int32 indices that overflow silently.)
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import SimilaritySession
from repro.datasets import generate_dblp
from repro.graph.matrices import dense_rows
from repro.lang.matrix_semantics import (
    CommutingMatrixEngine,
    pathsim_rows,
)

TOP_K = 10

SPECS = [
    ("relsim", {"pattern": "r-a-.p-in.p-in-.r-a"}),
    ("pathsim", {"pattern": "p-in.p-in-"}),
]


@pytest.fixture(scope="module")
def database():
    return generate_dblp(
        num_areas=3, num_procs=6, num_papers=36, num_authors=20, seed=23
    ).database


def _upcast(matrix):
    """The same CSR with int64 index buffers (values untouched)."""
    clone = CommutingMatrixEngine._fast_csr(
        matrix.data.copy(),
        matrix.indices.astype(np.int64),
        matrix.indptr.astype(np.int64),
        matrix.shape[0],
    )
    assert clone.indices.dtype == np.int64
    return clone


def _example_matrix(seed=3, n=40, nnz=120):
    rng = np.random.RandomState(seed)
    rows = rng.randint(0, n, size=nnz)
    cols = rng.randint(0, n, size=nnz)
    data = rng.rand(nnz)
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    matrix.sum_duplicates()
    return matrix


def test_dense_rows_is_index_dtype_agnostic():
    matrix = _example_matrix()
    upcast = _upcast(matrix)
    indices = [0, 7, 31, 39]
    assert np.array_equal(
        dense_rows(matrix, indices), dense_rows(upcast, indices)
    )


def test_pathsim_rows_is_index_dtype_agnostic():
    matrix = _example_matrix()
    matrix = matrix + matrix.T  # pathsim wants a symmetric matrix
    matrix = matrix.tocsr()
    upcast = _upcast(matrix)
    indices = np.array([1, 5, 17])
    assert np.array_equal(
        pathsim_rows(matrix, indices), pathsim_rows(upcast, indices)
    )


def _rankings(session, queries):
    prepared = [
        session.prepare(algorithm=name, top_k=TOP_K, **options)
        for name, options in SPECS
    ]
    return [
        [(query, list(handle.run(query).items())) for query in queries]
        for handle in prepared
    ]


def test_int64_index_warm_start_serves_identical_rankings(database):
    queries = sorted(database.nodes_of_type("proc"))[:4]

    warm = SimilaritySession(database)
    expected = _rankings(warm, queries)
    state = warm.engine.export_cache()
    assert state["matrices"], "warm session should have cached matrices"

    upcast_matrices = [
        (text, _upcast(matrix)) for text, matrix in state["matrices"]
    ]
    cold = SimilaritySession(database)
    loaded = cold.engine.preload(
        upcast_matrices,
        column_norms=state["column_norms"],
        diagonals=state["diagonals"],
    )
    assert loaded["matrices"] == len(upcast_matrices)
    assert loaded["skipped"] == 0

    actual = _rankings(cold, queries)
    # Bitwise equality: same candidates, same order, same float scores.
    assert actual == expected


def test_engine_matrix_survives_int64_preload(database):
    from repro.lang.parser import parse_pattern

    pattern = parse_pattern("p-in.p-in-")
    warm = SimilaritySession(database)
    reference = warm.engine.matrix(pattern)

    state = warm.engine.export_cache()
    cold = SimilaritySession(database)
    cold.engine.preload(
        [(text, _upcast(matrix)) for text, matrix in state["matrices"]]
    )
    served = cold.engine.matrix(pattern)
    assert served.shape == reference.shape
    assert (served != reference).nnz == 0
