"""Property-based robustness test: Corollary 1 on random databases.

Hypothesis generates random bibliographic databases that satisfy the
DBLP constraint *by construction* (papers inherit their proceedings'
areas), applies the DBLP2SIGM transformation, and checks that

* the transformation roundtrips exactly (invertibility);
* RelSim's commuting-matrix scores with the Theorem-2-translated pattern
  are identical for every node pair;
* consequently the full ranked lists are identical for every query.

This is the paper's central theorem exercised over thousands of random
instances rather than one worked example.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import RelSim
from repro.datasets.schemas import DBLP_SCHEMA
from repro.graph import GraphDatabase, MatrixView, NodeIndexer
from repro.lang import CommutingMatrixEngine, parse_pattern
from repro.transform import dblp2sigm, map_pattern, verify_roundtrip

AREAS = ["area{}".format(i) for i in range(4)]
PROCS = ["proc{}".format(i) for i in range(3)]
PAPERS = ["paper{}".format(i) for i in range(6)]
AUTHORS = ["auth{}".format(i) for i in range(3)]


@st.composite
def dblp_instances(draw):
    """A random constraint-satisfying DBLP database."""
    db = GraphDatabase(DBLP_SCHEMA)
    proc_areas = {
        proc: draw(
            st.lists(st.sampled_from(AREAS), max_size=3, unique=True)
        )
        for proc in PROCS
    }
    for paper in PAPERS:
        published = draw(st.booleans())
        if not published:
            continue
        proc = draw(st.sampled_from(PROCS))
        db.add_node(paper, "paper")
        db.add_node(proc, "proc")
        db.add_edge(paper, "p-in", proc)
        for area in proc_areas[proc]:
            db.add_node(area, "area")
            db.add_edge(paper, "r-a", area)
    for author in AUTHORS:
        for paper in draw(
            st.lists(st.sampled_from(PAPERS), max_size=3, unique=True)
        ):
            if db.has_node(paper):
                db.add_node(author, "author")
                db.add_edge(author, "w", paper)
    return db


PATTERN = parse_pattern("r-a-.p-in.p-in-.r-a")
MAPPING = dblp2sigm()
TRANSLATED = map_pattern(MAPPING, PATTERN)


@given(db=dblp_instances())
@settings(max_examples=60, deadline=None)
def test_transformation_is_invertible_on_constraint_satisfying_instances(db):
    assert verify_roundtrip(MAPPING, db)


@given(db=dblp_instances())
@settings(max_examples=60, deadline=None)
def test_theorem2_counts_equal_on_random_instances(db):
    if db.num_nodes() == 0:
        return  # nothing to compare on the empty instance
    variant = MAPPING.apply(db)
    indexer = NodeIndexer(db.nodes())
    source = CommutingMatrixEngine(MatrixView(db, indexer)).matrix(PATTERN)
    target = CommutingMatrixEngine(MatrixView(variant, indexer)).matrix(
        TRANSLATED
    )
    assert abs(source - target).max() == 0


@given(db=dblp_instances())
@settings(max_examples=30, deadline=None)
def test_corollary1_rankings_identical_on_random_instances(db):
    variant = MAPPING.apply(db)
    source = RelSim(db, PATTERN)
    target_candidates = set(variant.nodes())
    target = RelSim(variant, TRANSLATED)
    for query in db.nodes_of_type("proc"):
        if query not in target_candidates:
            continue
        assert (
            source.rank(query).top() == target.rank(query).top()
        ), query


@given(db=dblp_instances(), multiplicity=st.integers(min_value=1, max_value=3))
@settings(max_examples=20, deadline=None)
def test_inverse_maps_every_variant_back(db, multiplicity):
    """The strict-inverse requirement: every member of Sigma(I) maps back
    to I and only I (here exercised through the multiplicity knob)."""
    assert verify_roundtrip(MAPPING, db, multiplicity=multiplicity)
