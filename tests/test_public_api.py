"""Smoke tests for the public API surface and the exception hierarchy."""

import pytest

import repro
from repro.exceptions import (
    AsymmetricPatternError,
    ConstraintError,
    CyclicPremiseError,
    EvaluationError,
    NotInvertibleError,
    PatternSyntaxError,
    ReproError,
    SchemaError,
    StarDivergenceError,
    TransformationError,
    UnknownLabelError,
    UnknownNodeError,
)


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackage_all_exports_resolve():
    import repro.constraints
    import repro.datasets
    import repro.eval
    import repro.graph
    import repro.lang
    import repro.patterns
    import repro.similarity
    import repro.transform

    for module in (
        repro.constraints,
        repro.datasets,
        repro.eval,
        repro.graph,
        repro.lang,
        repro.patterns,
        repro.similarity,
        repro.transform,
    ):
        for name in module.__all__:
            assert hasattr(module, name), (module.__name__, name)


def test_version_string():
    assert repro.__version__.count(".") == 2


@pytest.mark.parametrize(
    "exception",
    [
        SchemaError,
        UnknownLabelError,
        UnknownNodeError,
        PatternSyntaxError,
        StarDivergenceError,
        ConstraintError,
        CyclicPremiseError,
        TransformationError,
        NotInvertibleError,
        EvaluationError,
        AsymmetricPatternError,
    ],
)
def test_every_library_error_is_a_repro_error(exception):
    assert issubclass(exception, ReproError)


def test_cyclic_premise_is_constraint_error():
    assert issubclass(CyclicPremiseError, ConstraintError)


def test_not_invertible_is_transformation_error():
    assert issubclass(NotInvertibleError, TransformationError)


def test_asymmetric_is_evaluation_error():
    assert issubclass(AsymmetricPatternError, EvaluationError)


def test_unknown_label_error_carries_context():
    error = UnknownLabelError("x", ["a", "b"])
    assert error.label == "x"
    assert error.schema_labels == {"a", "b"}


def test_star_divergence_reports_depth():
    from repro.lang import parse_pattern

    error = StarDivergenceError(parse_pattern("a*"), 7)
    assert error.depth == 7
    assert "a*" in str(error)


def test_docstring_example_from_package():
    """The module docstring's API tour must actually run."""
    from repro import CommutingMatrixEngine, GraphDatabase, Schema, parse_pattern

    schema = Schema(["p-in", "r-a"])
    db = GraphDatabase(schema)
    db.add_edge("paper:1", "p-in", "VLDB")
    db.add_edge("paper:2", "p-in", "VLDB")
    engine = CommutingMatrixEngine(db)
    score = engine.pathsim_score(
        parse_pattern("p-in.p-in-"), "paper:1", "paper:2"
    )
    assert score == pytest.approx(1.0)
