"""Unit tests for schema mappings and closed-world application."""

import pytest

from repro.constraints.tgd import Atom
from repro.exceptions import TransformationError
from repro.graph import GraphDatabase, Schema
from repro.transform import Rule, SchemaMapping, copy_rule


SOURCE = Schema(["a", "b"])
TARGET = Schema(["a", "c"])


def make_db(edges):
    db = GraphDatabase(SOURCE)
    db.add_edges(edges)
    return db


def test_copy_rule_is_identity():
    rule = copy_rule("a")
    assert rule.is_copy_rule()
    assert rule.conclusion_labels() == {"a"}


def test_rule_rejects_complex_conclusion():
    with pytest.raises(TransformationError):
        Rule([Atom("x", "a", "y")], [Atom("x", "a*", "y")])


def test_rule_normalizes_concat_conclusion():
    rule = Rule([Atom("x", "a", "y")], [Atom("x", "c.c", "z")])
    assert len(rule.conclusion) == 2
    assert rule.existential_variables() == {"z", "_f1"}


def test_mapping_validates_source_labels():
    with pytest.raises(TransformationError):
        SchemaMapping(
            "bad",
            SOURCE,
            TARGET,
            [Rule([Atom("x", "zzz", "y")], [Atom("x", "a", "y")])],
        )


def test_mapping_validates_target_labels():
    with pytest.raises(TransformationError):
        SchemaMapping(
            "bad",
            SOURCE,
            TARGET,
            [Rule([Atom("x", "a", "y")], [Atom("x", "b", "y")])],
        )


def test_apply_copy_rules():
    mapping = SchemaMapping("copy", SOURCE, TARGET, [copy_rule("a")])
    db = make_db([(1, "a", 2), (1, "b", 3)])
    out = mapping.apply(db)
    assert out.edge_set() == frozenset({(1, "a", 2)})  # b not copied


def test_apply_join_rule():
    rule = Rule(
        [Atom("x", "a", "y"), Atom("y", "b", "z")],
        [Atom("x", "c", "z")],
    )
    mapping = SchemaMapping("join", SOURCE, TARGET, [rule])
    db = make_db([(1, "a", 2), (2, "b", 3), (2, "b", 4)])
    out = mapping.apply(db)
    assert out.edge_set() == frozenset({(1, "c", 3), (1, "c", 4)})


def test_apply_reversed_conclusion_atom():
    rule = Rule([Atom("x", "a", "y")], [Atom("y", "c-", "x")])
    mapping = SchemaMapping("rev", SOURCE, TARGET, [rule])
    out = mapping.apply(make_db([(1, "a", 2)]))
    # (y, c-, x) constructs the edge (x, c, y).
    assert out.edge_set() == frozenset({(1, "c", 2)})


def test_apply_existential_mints_fresh_nodes():
    rule = Rule(
        [Atom("x", "a", "y")],
        [Atom("x", "c", "z")],
        fresh_types={"z": "minted"},
    )
    mapping = SchemaMapping("fresh", SOURCE, TARGET, [rule])
    out = mapping.apply(make_db([(1, "a", 2)]))
    edges = list(out.edges("c"))
    assert len(edges) == 1
    fresh = edges[0][2]
    assert out.node_type(fresh) == "minted"


def test_apply_existential_deterministic():
    rule = Rule([Atom("x", "a", "y")], [Atom("x", "c", "z")])
    mapping = SchemaMapping("fresh", SOURCE, TARGET, [rule])
    db = make_db([(1, "a", 2)])
    assert mapping.apply(db).edge_set() == mapping.apply(db).edge_set()


def test_apply_multiplicity_mints_multiple():
    rule = Rule([Atom("x", "a", "y")], [Atom("x", "c", "z")])
    mapping = SchemaMapping("fresh", SOURCE, TARGET, [rule])
    out = mapping.apply(make_db([(1, "a", 2)]), multiplicity=3)
    assert len(list(out.edges("c"))) == 3


def test_apply_multiplicity_noop_without_existentials():
    mapping = SchemaMapping("copy", SOURCE, TARGET, [copy_rule("a")])
    db = make_db([(1, "a", 2)])
    assert mapping.apply(db, multiplicity=3).edge_set() == frozenset(
        {(1, "a", 2)}
    )


def test_apply_invalid_multiplicity():
    mapping = SchemaMapping("copy", SOURCE, TARGET, [copy_rule("a")])
    with pytest.raises(TransformationError):
        mapping.apply(make_db([]), multiplicity=0)


def test_apply_carries_node_types():
    mapping = SchemaMapping("copy", SOURCE, TARGET, [copy_rule("a")])
    db = make_db([(1, "a", 2)])
    db.add_node(1, "paper")
    out = mapping.apply(db)
    assert out.node_type(1) == "paper"


def test_closed_world_drops_untouched_nodes():
    mapping = SchemaMapping("copy", SOURCE, TARGET, [copy_rule("a")])
    db = make_db([(1, "a", 2), (3, "b", 4)])
    out = mapping.apply(db)
    assert not out.has_node(3)
    assert not out.has_node(4)


def test_preserved_labels():
    rule = Rule([Atom("x", "a.b", "z")], [Atom("x", "c", "z")])
    mapping = SchemaMapping("m", SOURCE, TARGET, [copy_rule("a"), rule])
    assert mapping.preserved_labels() == {"a"}


def test_rre_premise_with_skip():
    rule = Rule([Atom("x", "<<a.b>>", "z")], [Atom("x", "c", "z")])
    mapping = SchemaMapping("skip", SOURCE, TARGET, [rule])
    db = make_db([(1, "a", 2), (1, "a", 3), (2, "b", 4), (3, "b", 4)])
    out = mapping.apply(db)
    # Two a.b paths from 1 to 4 collapse to a single premise match.
    assert out.edge_set() == frozenset({(1, "c", 4)})


def test_with_inverse_fluent():
    forward = SchemaMapping("f", SOURCE, TARGET, [copy_rule("a")])
    backward = SchemaMapping("b", TARGET, SOURCE, [copy_rule("a")])
    assert forward.with_inverse(backward) is forward
    assert forward.inverse is backward
