"""Tests for graph statistics."""

import pytest

from repro.graph import (
    GraphDatabase,
    Schema,
    degree_distribution,
    degree_statistics,
    label_histogram,
    node_type_histogram,
    summarize,
)


@pytest.fixture
def db():
    database = GraphDatabase(Schema(["a", "b"]))
    database.add_node("island", "rock")
    database.add_node("hub", "city")
    for i in range(5):
        database.add_edge("hub", "a", "leaf{}".format(i))
    database.add_edge("leaf0", "b", "leaf1")
    return database


def test_label_histogram(db):
    assert label_histogram(db) == {"a": 5, "b": 1}


def test_label_histogram_empty():
    assert label_histogram(GraphDatabase(Schema(["a"]))) == {}


def test_node_type_histogram(db):
    histogram = node_type_histogram(db)
    assert histogram["rock"] == 1
    assert histogram["city"] == 1
    assert histogram[None] == 5  # leaves are untyped


def test_degree_statistics(db):
    stats = degree_statistics(db)
    assert stats["max"] == 5  # hub
    assert stats["min"] == 0  # island
    assert stats["isolated"] == 1
    assert stats["mean"] == pytest.approx(12 / 7)


def test_degree_statistics_empty():
    stats = degree_statistics(GraphDatabase(Schema(["a"])))
    assert stats == {"min": 0, "mean": 0.0, "max": 0, "isolated": 0}


def test_degree_distribution_buckets(db):
    distribution = dict(degree_distribution(db, buckets=(1, 2, 4)))
    assert distribution[0] == 1  # island
    assert distribution[1] == 3  # leaf2..leaf4 (degree 1)
    assert distribution[2] == 2  # leaf0, leaf1 (degree 2)
    assert distribution[4] == 1  # hub (degree 5)


def test_degree_distribution_counts_every_node(db):
    distribution = degree_distribution(db)
    assert sum(count for _, count in distribution) == db.num_nodes()


def test_degree_distribution_below_first_bucket(db):
    # first bound above all degrees: everything non-isolated lands there
    distribution = dict(degree_distribution(db, buckets=(10, 20)))
    assert distribution[10] == 6
    assert distribution[20] == 0


def test_summarize_contains_key_facts(db):
    text = summarize(db, name="toy")
    assert "toy: 7 nodes, 6 edges" in text
    assert "isolated=1" in text
    assert "city" in text
    assert "a " in text


def test_summarize_untyped_database():
    database = GraphDatabase(Schema(["a"]))
    database.add_edge(1, "a", 2)
    text = summarize(database)
    assert "2 nodes, 1 edges" in text
    # no node-type section when everything is untyped
    assert "node types" not in text
