"""Tests for mapping composition and derived source constraints."""

import pytest

from repro.constraints import satisfies
from repro.constraints.tgd import Atom
from repro.exceptions import TransformationError
from repro.graph import Schema
from repro.transform import (
    Rule,
    SchemaMapping,
    biomedt,
    compose_inverse,
    copy_rule,
    dblp2sigm,
    derived_source_constraints,
    wsuc2alch,
)


def test_dblp_composition_recovers_example4(fig1):
    """The composed constraint matches Example 4's tgd on Figure 1(a)."""
    constraints = derived_source_constraints(dblp2sigm())
    assert len(constraints) == 1
    constraint = constraints[0]
    # Premise labels: one p-in copy atom plus the producer's p-in & r-a.
    assert constraint.premise_labels() == {"p-in", "r-a"}
    assert constraint.conclusion_labels() == {"r-a"}
    assert not constraint.is_trivial()
    assert satisfies(fig1, constraint)


def test_wsu_composition_is_satisfied(wsu_bundle):
    constraints = derived_source_constraints(wsuc2alch())
    assert len(constraints) == 1
    assert satisfies(wsu_bundle.database, constraints[0])


def test_biomed_composition_nontrivial_count():
    constraints = derived_source_constraints(biomedt())
    # One constraint per indirect label (the copies are trivial).
    assert len(constraints) == 2
    conclusions = {
        label for c in constraints for label in c.conclusion_labels()
    }
    assert conclusions == {"ph-a-indirect", "dd-ph-indirect"}


def test_keep_trivial_includes_copies():
    with_trivial = compose_inverse(dblp2sigm())
    without = derived_source_constraints(dblp2sigm())
    assert len(with_trivial) > len(without)
    assert all(not c.is_trivial() for c in without)


def test_compose_requires_inverse():
    schema = Schema(["a"])
    mapping = SchemaMapping("m", schema, schema, [copy_rule("a")])
    with pytest.raises(TransformationError):
        compose_inverse(mapping)


def test_compose_rejects_unproduced_label():
    source = Schema(["a", "b"])
    target = Schema(["a", "b"])
    forward = SchemaMapping("f", source, target, [copy_rule("a")])
    # inverse premise mentions b, which no forward rule produces.
    inverse = SchemaMapping(
        "f-inv", target, source, [copy_rule("a"), copy_rule("b")]
    )
    forward.with_inverse(inverse)
    with pytest.raises(TransformationError):
        compose_inverse(forward)


def test_compose_rejects_existential_endpoint():
    source = Schema(["a", "b"])
    target = Schema(["a", "b"])
    forward = SchemaMapping(
        "f",
        source,
        target,
        [
            copy_rule("a"),
            Rule([Atom("x", "a", "y")], [Atom("x", "b", "z")]),
        ],
    )
    inverse = SchemaMapping(
        "f-inv",
        target,
        source,
        [
            copy_rule("a"),
            Rule([Atom("x", "b", "y")], [Atom("x", "b", "y")]),
        ],
    )
    forward.with_inverse(inverse)
    # b is produced on the existential node z: second-order case.
    with pytest.raises(TransformationError):
        compose_inverse(forward)


def test_composition_violated_by_constraint_breaking_database(fig1):
    """A database violating the paper's constraint fails Proposition 1."""
    fig1.add_edge("Rogue", "p-in", "VLDB")  # paper without VLDB's areas
    constraint = derived_source_constraints(dblp2sigm())[0]
    assert not satisfies(fig1, constraint)


def test_reversed_atom_in_inverse_premise():
    source = Schema(["a", "c"])
    target = Schema(["a", "c"])
    forward = SchemaMapping(
        "f",
        source,
        target,
        [copy_rule("a"), Rule([Atom("x", "a", "y")], [Atom("y", "c", "x")])],
    )
    inverse = SchemaMapping(
        "f-inv",
        target,
        source,
        [
            copy_rule("a"),
            Rule([Atom("x", "c-", "y")], [Atom("x", "c", "y")]),
        ],
    )
    forward.with_inverse(inverse)
    constraints = compose_inverse(forward)
    assert constraints  # reversed premise atoms compose without error
