"""Tests for the paper's concrete transformations (Section 7.1)."""

import pytest

from repro.constraints import satisfies
from repro.datasets import figure1_dblp
from repro.transform import (
    EXPERIMENT_PATTERNS,
    biomedt,
    biomedt_lossy,
    dblp2sigm,
    dblp2sigm_lossy,
    dblp2sigmx,
    verify_derived_constraints,
    verify_roundtrip,
    wsuc2alch,
)


def test_dblp2sigm_moves_area_edges(fig1):
    out = dblp2sigm().apply(fig1)
    assert out.has_edge("VLDB", "r-a", "DataMining")
    assert out.has_edge("VLDB", "r-a", "Databases")
    assert not out.has_edge("PatternMining", "r-a", "DataMining")
    # p-in edges preserved
    assert out.has_edge("PatternMining", "p-in", "VLDB")


def test_dblp2sigm_roundtrip_on_figure1(fig1):
    assert verify_roundtrip(dblp2sigm(), fig1, raise_on_failure=True)


def test_dblp2sigm_roundtrip_on_generated(dblp_small):
    assert verify_roundtrip(dblp2sigm(), dblp_small.database)


def test_dblp2sigm_derived_constraints_on_figure1(fig1):
    assert verify_derived_constraints(dblp2sigm(), fig1)


def test_dblp2sigmx_adds_record_nodes(dblp_small):
    db = dblp_small.database
    out = dblp2sigmx().apply(db)
    records = out.nodes_of_type("pubrec")
    assert records
    # every record connects one author and one proceedings
    record = records[0]
    assert len(out.successors(record, "rec-of")) == 1
    assert len(out.successors(record, "rec-in")) == 1


def test_dblp2sigmx_one_record_per_author_proc_pair(fig1):
    fig1.add_edge("alice", "w", "PatternMining")
    fig1.add_edge("alice", "w", "SimilarityMining")
    out = dblp2sigmx().apply(fig1)
    # alice published two papers in VLDB but gets a single record node.
    assert len(out.nodes_of_type("pubrec")) == 1


def test_dblp2sigmx_roundtrip(dblp_small):
    assert verify_roundtrip(dblp2sigmx(), dblp_small.database)


def test_dblp2sigmx_roundtrip_with_multiplicity(fig1):
    # Multiple target databases (different record node counts) must all
    # map back to the same original.
    assert verify_roundtrip(dblp2sigmx(), fig1, multiplicity=2)


def test_wsuc2alch_moves_subject_edges(wsu_bundle):
    db = wsu_bundle.database
    out = wsuc2alch().apply(db)
    assert list(out.edges("cs"))
    assert not list(out.edges("os"))
    assert verify_roundtrip(wsuc2alch(), db)


def test_biomedt_drops_indirect_labels(biomed_bundle):
    db = biomed_bundle.database
    out = biomedt().apply(db)
    assert "ph-a-indirect" not in out.schema.labels
    assert not [e for e in out.edges() if e[1].endswith("indirect")]


def test_biomedt_roundtrip(biomed_bundle):
    assert verify_roundtrip(
        biomedt(), biomed_bundle.database, raise_on_failure=True
    )


def test_lossy_dblp_loses_edges(dblp_small):
    db = dblp_small.database
    lossy = dblp2sigm_lossy(keep=0.95, seed=3)
    exact = dblp2sigm().apply(db)
    damaged = lossy.apply(db)
    lost = len(exact.edge_set()) - len(damaged.edge_set())
    assert lost == pytest.approx(0.05 * exact.num_edges(), abs=2)


def test_lossy_biomed_name():
    assert biomedt_lossy(keep=0.95).name == "BioMedT(0.95)"


def test_transformed_database_satisfies_target_constraint(fig1):
    out = dblp2sigm().apply(fig1)
    for constraint in out.schema.constraints:
        assert satisfies(out, constraint)


def test_experiment_patterns_cover_all_transformations():
    assert set(EXPERIMENT_PATTERNS) == {"DBLP2SIGM", "WSUC2ALCH", "BioMedT"}
    for spec in EXPERIMENT_PATTERNS.values():
        assert {"query_type", "answer_type", "relsim_source"} <= set(spec)
