"""Delta-fuzz parity: incremental maintenance == fresh build, bitwise.

The incremental live-update path patches cached commuting matrices,
diagonals, norms, candidate indexes, and prepared scoring state instead
of rebuilding them.  The claim backing it is *exactness*: commuting
matrices hold integer counts (exact in float64), so sparse delta
propagation produces bitwise-identical state — and therefore bitwise-
identical rankings — to a session built from scratch.

This suite fuzzes that claim: seeded random sequences of add-edge /
remove-edge / add-node deltas are applied through a
:class:`SimilarityService` forced onto the incremental path, and after
**every** step the rankings served by every registered algorithm's live
prepared handle must equal — item for item, score bit for score bit —
those of a fresh :class:`SimilaritySession` built on the same database.

Tunables (the CI ``delta-fuzz`` job raises them):

* ``REPRO_DELTA_FUZZ_STEPS`` — delta steps per run (default 6)
* ``REPRO_DELTA_FUZZ_SEED``  — base RNG seed (default 0)
"""

import os
import random

import pytest

from repro.api import SimilarityService, SimilaritySession, available_algorithms
from repro.datasets import generate_dblp

STEPS = int(os.environ.get("REPRO_DELTA_FUZZ_STEPS", "6"))
SEED = int(os.environ.get("REPRO_DELTA_FUZZ_SEED", "0"))
TOP_K = 10

#: One prepared-query spec per registered algorithm (plus the
#: Algorithm-1 expansion variant of RelSim, which exercises the
#: expansion-reuse path of incremental re-binding).  Patterns are
#: area-to-area or proc-to-proc relationships over the DBLP schema.
SPECS = [
    ("relsim", {"pattern": "r-a-.p-in.p-in-.r-a"}),
    (
        "relsim",
        {
            "pattern": "r-a-.p-in.p-in-.r-a",
            "expand": {"max_patterns": 8},
        },
    ),
    ("pathsim", {"pattern": "p-in.p-in-"}),
    ("hetesim", {"pattern": "p-in-.p-in", "answer_type": "proc"}),
    ("rwr", {}),
    ("simrank", {}),
    ("pattern-rwr", {"pattern": "p-in.p-in-"}),
    ("pattern-simrank", {"pattern": "p-in.p-in-"}),
    ("common-neighbors", {}),
    ("katz", {}),
]


def _tiny_dblp(seed):
    return generate_dblp(
        num_areas=3, num_procs=6, num_papers=36, num_authors=20, seed=seed
    ).database


def _random_delta(rng, database, step):
    """1-3 random mutations, valid against the current database."""
    papers = database.nodes_of_type("paper")
    procs = database.nodes_of_type("proc")
    areas = database.nodes_of_type("area")
    authors = database.nodes_of_type("author")
    edges_added, edges_removed, nodes_added = [], [], []
    for _ in range(rng.randint(1, 3)):
        operation = rng.choice(("add", "add", "remove", "node"))
        if operation == "add":
            label = rng.choice(("w", "p-in", "r-a"))
            if label == "w":
                edge = (rng.choice(authors), "w", rng.choice(papers))
            elif label == "p-in":
                edge = (rng.choice(papers), "p-in", rng.choice(procs))
            else:
                edge = (rng.choice(papers), "r-a", rng.choice(areas))
            if not database.has_edge(*edge) and edge not in edges_added:
                edges_added.append(edge)
        elif operation == "remove":
            label = rng.choice(("w", "p-in", "r-a"))
            edges = sorted(database.edges(label))
            if edges:
                edge = rng.choice(edges)
                if edge not in edges_removed:
                    edges_removed.append(edge)
        else:
            node_type = rng.choice(("paper", "proc", "area", None))
            node = "fuzz:{}:{}".format(step, len(nodes_added))
            nodes_added.append((node, node_type))
            if node_type == "paper":
                # Wire the newcomer in so it can influence rankings.
                edges_added.append((node, "p-in", rng.choice(procs)))
    return edges_added, edges_removed, nodes_added


def _prepare_all(target):
    return [
        target.prepare(algorithm=name, top_k=TOP_K, **options)
        for name, options in SPECS
    ]


def _queries(database, rng):
    procs = sorted(database.nodes_of_type("proc"))
    areas = sorted(database.nodes_of_type("area"))
    return rng.sample(areas, min(2, len(areas))) + rng.sample(
        procs, min(3, len(procs))
    )


def _expected_queries(spec_options, queries, database):
    # HeteSim's proc-to-proc meta-path only answers proc queries; every
    # other spec answers any typed query.
    if spec_options.get("answer_type") == "proc":
        return [q for q in queries if database.node_type(q) == "proc"]
    return queries


def test_all_specs_cover_every_registered_algorithm():
    assert {name for name, _ in SPECS} == set(available_algorithms())


@pytest.mark.parametrize("seed", [SEED, SEED + 1])
def test_delta_fuzz_incremental_parity_all_algorithms(seed):
    rng = random.Random(seed)
    database = _tiny_dblp(seed)
    service = SimilarityService(database)
    prepared = _prepare_all(service)

    for step in range(STEPS):
        edges_added, edges_removed, nodes_added = _random_delta(
            rng, service.database, step
        )
        version = service.apply(
            edges_added=edges_added,
            edges_removed=edges_removed,
            nodes_added=nodes_added,
            incremental=True,
        )
        assert version == step + 2
        assert service.delta_stats["last_path"] == "incremental"

        fresh = SimilaritySession(service.database)
        fresh_prepared = _prepare_all(fresh)
        queries = _queries(service.database, rng)
        for (name, options), live, reference in zip(
            SPECS, prepared, fresh_prepared
        ):
            for query in _expected_queries(
                options, queries, service.database
            ):
                live_items = live.run(query).items()
                reference_items = reference.run(query).items()
                assert live_items == reference_items, (
                    "step {} algorithm {!r} query {!r}: incremental "
                    "ranking diverged from fresh build".format(
                        step, name, query
                    )
                )


def test_delta_fuzz_subscriptions_track_fresh_rankings():
    """Standing queries stay bitwise-exact under random deltas.

    One live subscription per registered algorithm, maintained through
    the pruned / rescored-certificate / fallback ladder; after every
    random delta (alternating incremental applies with full-rebuild
    swaps) each maintained top-k must equal a fresh session's
    ``prepared.run`` — item for item, score bit for score bit.
    """
    rng = random.Random(SEED + 29)
    database = _tiny_dblp(SEED + 29)
    service = SimilarityService(database)
    prepared = _prepare_all(service)
    node = sorted(database.nodes_of_type("proc"))[0]
    subscriptions = [service.subscribe(handle, node) for handle in prepared]

    for step in range(STEPS):
        edges_added, edges_removed, nodes_added = _random_delta(
            rng, service.database, step
        )
        service.apply(
            edges_added=edges_added,
            edges_removed=edges_removed,
            nodes_added=nodes_added,
            incremental=step % 2 == 0,
        )
        fresh = SimilaritySession(service.database)
        fresh_prepared = _prepare_all(fresh)
        for (name, _), live, reference in zip(
            SPECS, subscriptions, fresh_prepared
        ):
            assert live.items() == reference.run(node).items(), (
                "step {} algorithm {!r}: maintained subscription "
                "diverged from fresh build".format(step, name)
            )
            assert live.version == service.version

    stats = service.subscription_stats
    assert stats["active"] == len(SPECS)
    maintained = stats["pruned"] + stats["rescored"] + stats["fallbacks"]
    assert maintained == len(SPECS) * STEPS


def test_delta_fuzz_mixed_incremental_and_rebuild_paths():
    """Interleaving forced rebuilds with incremental applies stays exact."""
    rng = random.Random(SEED + 17)
    database = _tiny_dblp(SEED + 17)
    service = SimilarityService(database)
    prepared = service.prepare(
        algorithm="relsim",
        pattern="r-a-.p-in.p-in-.r-a",
        expand={"max_patterns": 8},
        top_k=TOP_K,
    )
    for step in range(STEPS):
        edges_added, edges_removed, nodes_added = _random_delta(
            rng, service.database, step
        )
        service.apply(
            edges_added=edges_added,
            edges_removed=edges_removed,
            nodes_added=nodes_added,
            incremental=step % 2 == 0,
        )
        fresh = SimilaritySession(service.database)
        reference = fresh.prepare(
            algorithm="relsim",
            pattern="r-a-.p-in.p-in-.r-a",
            expand={"max_patterns": 8},
            top_k=TOP_K,
        )
        for query in sorted(service.database.nodes_of_type("area")):
            assert prepared.run(query).items() == reference.run(query).items()
    stats = service.delta_stats
    assert stats["incremental_applies"] + stats["full_rebuilds"] == STEPS
