"""Shared-memory round-trip parity: attached engines rank identically.

The process-parallel serving path (PR 8) publishes the engine's state
into a ``multiprocessing`` shared-memory segment and reconstructs it
zero-copy on the reader side (:mod:`repro.server.shm`).  This suite is
the correctness gate for that round trip: for **every** registered
algorithm, a query answered through an attached session must be
bitwise-identical to the in-process answer — same nodes, same float
scores, same order — including after an incremental ``apply``
re-publishes a new segment.  (Cross-*process* parity, through real
spawn workers, is asserted by ``tests/test_server_workers.py``; this
suite pins down the serialization layer itself.)
"""

import numpy as np
import pytest

from repro.api.prepared import PreparedQuery
from repro.api.service import SimilarityService
from repro.datasets import generate_dblp
from repro.exceptions import SnapshotError
from repro.server.shm import (
    REGISTRY,
    SHM_FORMAT,
    attach_session,
    publish_session,
)
from repro.api import available_algorithms

TOP_K = 10

#: One prepared-query spec per registered algorithm (mirrors the
#: delta-fuzz suite), plus RelSim's Algorithm-1 expansion variant —
#: the expanded pattern set crosses the manifest as text and must
#: rebind without re-running expansion.
SPECS = [
    ("relsim", {"pattern": "r-a-.p-in.p-in-.r-a"}),
    (
        "relsim",
        {
            "pattern": "r-a-.p-in.p-in-.r-a",
            "expand": {"max_patterns": 8},
        },
    ),
    ("pathsim", {"pattern": "p-in.p-in-"}),
    ("hetesim", {"pattern": "p-in-.p-in", "answer_type": "proc"}),
    ("rwr", {}),
    ("simrank", {}),
    ("pattern-rwr", {"pattern": "p-in.p-in-"}),
    ("pattern-simrank", {"pattern": "p-in.p-in-"}),
    ("common-neighbors", {}),
    ("katz", {}),
]


def _tiny_dblp(seed):
    return generate_dblp(3, 6, 36, 20, seed=seed).database


def _queries(database, options):
    procs = sorted(database.nodes_of_type("proc"))
    areas = sorted(database.nodes_of_type("area"))
    if options.get("answer_type") == "proc":
        return procs[:3]
    return areas[:2] + procs[:3]


def _publish(service):
    manifest = publish_session(service.session, service.version)
    assert manifest["format"] == SHM_FORMAT
    assert manifest["segment"] in REGISTRY.names()
    return manifest


def _assert_parity(service, attached, locals_):
    """Every spec, every query: attached ranking == in-process ranking."""
    for (name, options), local in zip(SPECS, locals_):
        worker = PreparedQuery.from_spec(attached.session, local.export_spec())
        for query in _queries(service.database, options):
            theirs = worker.run(query).items()
            ours = local.run(query).items()
            assert theirs == ours, (
                "algorithm {!r} query {!r}: attached engine diverged "
                "from in-process engine".format(name, query)
            )
            # Bitwise, not approximately: the worker reads the *same*
            # buffers the parent computed, so scores must be equal as
            # floats, not merely close.
            assert [s for _, s in theirs] == [s for _, s in ours]
        del worker  # release matrix views before the segment unmaps


def test_specs_cover_every_registered_algorithm():
    assert {name for name, _ in SPECS} == set(available_algorithms())


def test_attached_engine_ranks_identically_for_all_algorithms():
    service = SimilarityService(_tiny_dblp(0))
    locals_ = [
        service.prepare(algorithm=name, top_k=TOP_K, **options)
        for name, options in SPECS
    ]
    manifest = _publish(service)  # after warming: caches ride along
    attached = attach_session(manifest)
    try:
        assert attached.version == service.version
        assert attached.loaded["matrices"] > 0
        assert attached.loaded["adjacency"] > 0
        assert attached.loaded["skipped"] == 0
        _assert_parity(service, attached, locals_)
    finally:
        attached.close()
        REGISTRY.unlink(manifest["segment"])
    assert manifest["segment"] not in REGISTRY.names()


def test_attached_engine_ranks_identically_after_incremental_republish():
    service = SimilarityService(_tiny_dblp(1))
    locals_ = [
        service.prepare(algorithm=name, top_k=TOP_K, **options)
        for name, options in SPECS
    ]
    papers = sorted(service.database.nodes_of_type("paper"))
    procs = sorted(service.database.nodes_of_type("proc"))
    version = service.apply(
        edges_added=[(papers[0], "p-in", procs[-1])], incremental=True
    )
    assert version == 2

    manifest = _publish(service)
    assert manifest["version"] == 2
    attached = attach_session(manifest)
    try:
        # The service's prepared handles are live (delta-maintained);
        # the attached engine was rebuilt from the *post-apply* segment.
        _assert_parity(service, attached, locals_)
    finally:
        attached.close()
        REGISTRY.unlink(manifest["segment"])


def test_attached_matrices_are_zero_copy_read_only_views():
    service = SimilarityService(_tiny_dblp(2))
    service.prepare(
        algorithm="relsim", pattern="r-a-.p-in.p-in-.r-a", top_k=TOP_K
    )
    manifest = _publish(service)
    attached = attach_session(manifest)
    try:
        engine = attached.session.engine
        state = engine.export_cache()
        assert state["matrices"], "attached engine lost its preload"
        for _key, matrix in state["matrices"]:
            # Views over the mapped segment, never copies: numpy marks
            # a frombuffer slice as not owning its data, and the attach
            # path freezes it read-only.
            assert not matrix.data.flags.owndata
            assert not matrix.data.flags.writeable
            with pytest.raises(ValueError):
                matrix.data[0] = np.float64(0.0)
    finally:
        attached.close()
        REGISTRY.unlink(manifest["segment"])


def test_attach_rejects_unknown_manifest_format():
    with pytest.raises(SnapshotError):
        attach_session({"format": SHM_FORMAT + 1, "segment": "nope"})
    with pytest.raises(SnapshotError):
        attach_session("not a manifest")


def test_attach_reports_vanished_segment():
    service = SimilarityService(_tiny_dblp(3))
    manifest = _publish(service)
    REGISTRY.unlink(manifest["segment"])
    with pytest.raises(SnapshotError):
        attach_session(manifest)
