"""Tests for Ranking and candidate selection."""

import pytest

from repro.graph import GraphDatabase, Schema
from repro.similarity import Ranking
from repro.similarity.base import SimilarityAlgorithm


def test_ranking_sorts_by_score_desc():
    ranking = Ranking([("a", 0.1), ("b", 0.9), ("c", 0.5)])
    assert ranking.top() == ["b", "c", "a"]


def test_ranking_breaks_ties_by_node_id():
    ranking = Ranking([("z", 0.5), ("a", 0.5), ("m", 0.5)])
    assert ranking.top() == ["a", "m", "z"]


def test_ranking_top_k():
    ranking = Ranking([("a", 3.0), ("b", 2.0), ("c", 1.0)])
    assert ranking.top(2) == ["a", "b"]
    assert len(ranking.items(2)) == 2


def test_ranking_score_and_position():
    ranking = Ranking([("a", 3.0), ("b", 2.0)])
    assert ranking.score_of("b") == 2.0
    assert ranking.score_of("zz") is None
    assert ranking.position_of("a") == 1
    assert ranking.position_of("b") == 2
    assert ranking.position_of("zz") is None


def test_ranking_iteration_and_len():
    ranking = Ranking([("a", 1.0)])
    assert list(ranking) == ["a"]
    assert len(ranking) == 1


def test_ranking_lookup_built_lazily_and_consistent():
    ranking = Ranking([("n{}".format(i), float(i)) for i in range(50)])
    # The node -> (position, score) index appears on first lookup only.
    assert ranking._lookup is None
    assert ranking.position_of("n49") == 1
    assert ranking._lookup is not None
    # Every lookup agrees with a linear scan of items().
    for position, (node, score) in enumerate(ranking.items(), start=1):
        assert ranking.position_of(node) == position
        assert ranking.score_of(node) == score
    assert ranking.position_of("absent") is None
    assert ranking.score_of("absent") is None


def test_rank_many_default_matches_rank(typed_db):
    algorithm = ConstantAlgorithm(typed_db)
    batch = algorithm.rank_many(["p1", "p2"], top_k=1)
    assert set(batch) == {"p1", "p2"}
    for query in ("p1", "p2"):
        assert batch[query].items() == algorithm.rank(query, top_k=1).items()


class ConstantAlgorithm(SimilarityAlgorithm):
    """Scores every candidate 1.0; used to test the base-class plumbing."""

    name = "Constant"

    def scores(self, query):
        return {node: 1.0 for node in self.candidates(query)}


@pytest.fixture
def typed_db():
    db = GraphDatabase(Schema(["e"]))
    db.add_node("p1", "paper")
    db.add_node("p2", "paper")
    db.add_node("p3", "paper")
    db.add_node("v1", "venue")
    db.add_edge("p1", "e", "v1")
    return db


def test_candidates_default_same_type(typed_db):
    algorithm = ConstantAlgorithm(typed_db)
    assert set(algorithm.candidates("p1")) == {"p2", "p3"}


def test_candidates_never_include_query(typed_db):
    algorithm = ConstantAlgorithm(typed_db)
    assert "p1" not in algorithm.candidates("p1")


def test_candidates_with_answer_type(typed_db):
    algorithm = ConstantAlgorithm(typed_db, answer_type="venue")
    assert algorithm.candidates("p1") == ["v1"]


def test_candidates_untyped_query_gets_all_nodes():
    db = GraphDatabase(Schema(["e"]))
    db.add_edge(1, "e", 2)
    db.add_edge(2, "e", 3)
    algorithm = ConstantAlgorithm(db)
    assert set(algorithm.candidates(1)) == {2, 3}


def test_rank_truncation(typed_db):
    algorithm = ConstantAlgorithm(typed_db)
    assert len(algorithm.rank("p1", top_k=1)) == 1
    assert len(algorithm.rank("p1")) == 2


def test_base_scores_not_implemented(typed_db):
    with pytest.raises(NotImplementedError):
        SimilarityAlgorithm(typed_db).scores("p1")
