"""Tests for roundtrip verification and lossy transformations."""

import pytest

from repro.exceptions import NotInvertibleError, TransformationError
from repro.graph import GraphDatabase, Schema
from repro.transform import (
    LossyTransformation,
    check_invertible_on,
    dblp2sigm,
    drop_edges,
    roundtrip,
    verify_roundtrip,
)
from repro.transform.mapping import SchemaMapping, copy_rule


def test_roundtrip_returns_source_content(fig1):
    recovered = roundtrip(dblp2sigm(), fig1)
    assert recovered.edge_set() == fig1.edge_set()


def test_roundtrip_requires_inverse(fig1):
    mapping = SchemaMapping(
        "x", fig1.schema, fig1.schema, [copy_rule("p-in")]
    )
    with pytest.raises(TransformationError):
        roundtrip(mapping, fig1)


def test_verify_roundtrip_failure_raises_with_details(fig1):
    # A paper with an area but no proceedings loses its area edge.
    fig1.add_edge("Orphan", "r-a", "Databases")
    assert not verify_roundtrip(dblp2sigm(), fig1)
    with pytest.raises(NotInvertibleError) as excinfo:
        verify_roundtrip(dblp2sigm(), fig1, raise_on_failure=True)
    assert "lost 1 edges" in str(excinfo.value)


def test_check_invertible_on_reports_failures(fig1, dblp_small):
    broken = fig1.copy()
    broken.add_edge("Orphan", "r-a", "Databases")
    failures = check_invertible_on(
        dblp2sigm(), [fig1, broken, dblp_small.database]
    )
    assert failures == [broken]


def test_drop_edges_fraction(tiny_db):
    damaged = drop_edges(tiny_db, 0.25, seed=1)
    assert damaged.num_edges() == tiny_db.num_edges() - 2


def test_drop_edges_zero_is_identity(tiny_db):
    assert drop_edges(tiny_db, 0.0).edge_set() == tiny_db.edge_set()


def test_drop_edges_deterministic(tiny_db):
    first = drop_edges(tiny_db, 0.5, seed=42)
    second = drop_edges(tiny_db, 0.5, seed=42)
    assert first.edge_set() == second.edge_set()


def test_drop_edges_seed_matters(tiny_db):
    outcomes = {
        drop_edges(tiny_db, 0.5, seed=s).edge_set() for s in range(8)
    }
    assert len(outcomes) > 1


def test_drop_edges_protected_labels(tiny_db):
    damaged = drop_edges(tiny_db, 0.5, seed=0, protected_labels=["c"])
    assert set(damaged.edges("c")) == set(tiny_db.edges("c"))


def test_drop_edges_invalid_fraction(tiny_db):
    with pytest.raises(TransformationError):
        drop_edges(tiny_db, 1.0)
    with pytest.raises(TransformationError):
        drop_edges(tiny_db, -0.1)


def test_lossy_transformation_wraps_mapping(fig1):
    lossy = LossyTransformation(dblp2sigm(), keep=0.9, seed=0)
    exact = dblp2sigm().apply(fig1)
    damaged = lossy.apply(fig1)
    assert len(damaged.edge_set()) < len(exact.edge_set())
    assert damaged.edge_set() <= exact.edge_set()


def test_lossy_exposes_mapping_metadata():
    lossy = LossyTransformation(dblp2sigm(), keep=0.9)
    assert lossy.source is dblp2sigm().source
    assert lossy.inverse is not None
    assert "0.90" in lossy.name


def test_lossy_invalid_keep():
    with pytest.raises(TransformationError):
        LossyTransformation(dblp2sigm(), keep=0.0)
