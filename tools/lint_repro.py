#!/usr/bin/env python3
"""Repo invariant linter: mechanized checks for the rules the code review
kept re-litigating.  Pure stdlib (``ast`` + ``re``), no third-party deps,
so it runs anywhere CI has a Python.

Usage::

    python tools/lint_repro.py [path ...]     # default: src

Rules
-----
``dense-materialization``
    No ``.toarray()`` / ``.todense()`` and no dense n x n (or k x n)
    array allocation (``np.zeros((a, b))``, ``np.identity(n)``, ...)
    outside the whitelisted budget-guarded helpers below.  Everything
    else must stay sparse or route through
    :func:`repro.graph.matrices.dense_rows`.

``lock-discipline``
    No matrix products (``@`` / ``.multiply(...)``) lexically inside a
    ``with ..._lock:`` block.  The engine's contract is: compute outside
    the lock, publish under it; a matmul under a lock serializes every
    concurrent reader behind one multiplication.  Also: no callback
    dispatch (a call named ``callback`` / ``*_callback``) under a lock —
    user code invoked while a lock is held can block every other thread
    on it or deadlock by re-entering the library; hand events to a
    queue and invoke callbacks from a notifier thread instead (see
    :mod:`repro.streaming.subscription`).

``int32-index``
    No explicit 32-bit index construction (``np.int32``,
    ``dtype="int32"``, ``astype("int32")``).  SciPy upcasts CSR indices
    to int64 when nnz demands it; hand-built int32 indices silently
    overflow on large graphs instead.

``exception-taxonomy``
    Public modules (``src/repro/api``, ``src/repro/server``) must raise
    :class:`repro.exceptions.ReproError` subclasses, not bare
    ``KeyError`` / ``ValueError`` / ``IndexError``, so callers can catch
    the library taxonomy.  (``TypeError`` for caller programming errors
    is conventional and allowed.)

``shm-lifecycle``
    No bare ``SharedMemory(create=True)``.  Segment creation must go
    through :meth:`repro.server.shm.SegmentRegistry.create` (the
    ``SHM_WHITELIST`` below), which registers every segment with the
    atexit/SIGTERM reaper — a segment created anywhere else can outlive
    the process and leak ``/dev/shm`` entries on a crash.

Suppressions
------------
A finding is waived by a comment on the same line or the line above::

    # repro-lint: ok(<rule>) <reason>

The reason is mandatory, and an unused suppression is itself an error —
stale waivers must not outlive the code they excused.

Dense-materialization whitelist
-------------------------------
``DENSE_WHITELIST`` below is the repo's density audit, in code: every
site allowed to build a dense array, with the budget argument that
justifies it.  ROADMAP's "audit dense materialization" item is this
table — adding an entry *is* extending the audit, and reviews happen on
its diff.
"""

import argparse
import ast
import os
import re
import sys
from collections import namedtuple

#: Every site allowed to materialize a dense array, keyed by
#: (path suffix, dotted qualname), mapped to the budget argument that
#: justifies it.  This table is the density audit.
DENSE_WHITELIST = {
    ("repro/graph/matrices.py", "dense_rows"):
        "the budget-guarded k x n slice helper itself; callers pass "
        "query-batch row sets, never the full node range",
    ("repro/similarity/simrank.py", "simrank_matrix"):
        "SimRank is inherently dense n x n; the SimRank class guards "
        "with max_nodes before calling",
    ("repro/similarity/rwr.py", "RWR.score_rows"):
        "k x n output rows for a query batch (k = batch size)",
    ("repro/similarity/pattern_constrained.py", "PatternRWR.score_rows"):
        "k x n output rows for a query batch (k = batch size)",
    ("repro/similarity/neighborhood.py", "Katz.score_rows"):
        "k x n output rows for a query batch (k = batch size)",
    ("repro/lang/matrix_semantics.py", "pathsim_rows"):
        "k x n score block filled by direct CSR buffer reads; k is the "
        "query-batch size",
    ("repro/core/relsim.py", "RelSim.score_rows"):
        "k x n accumulator summed across the prepared patterns",
}

#: The only site allowed to call ``SharedMemory(create=True)``, keyed
#: like DENSE_WHITELIST.  Creation must imply reaper registration.
SHM_WHITELIST = {
    ("repro/server/shm.py", "SegmentRegistry.create"):
        "the registry's own create(); it records the segment and "
        "installs the atexit/SIGTERM reaper before handing it out",
}

RULES = (
    "dense-materialization",
    "lock-discipline",
    "int32-index",
    "exception-taxonomy",
    "shm-lifecycle",
)

#: Exception names public api/server modules may not raise bare.
_BARE_EXCEPTIONS = {"KeyError", "ValueError", "IndexError"}

#: Modules the exception-taxonomy rule applies to (path substrings).
_PUBLIC_PREFIXES = ("repro/api/", "repro/server/")

_NUMPY_ALIASES = {"np", "numpy"}

_SUPPRESSION = re.compile(
    r"#\s*repro-lint:\s*ok\((?P<rule>[a-z0-9-]+)\)\s*(?P<reason>\S.*)?$"
)

Violation = namedtuple("Violation", ["path", "line", "rule", "message"])


def _posix(path):
    return path.replace(os.sep, "/")


def _is_whitelisted(path, qualname, table=None):
    posix = _posix(path)
    for (suffix, allowed), _reason in (
        DENSE_WHITELIST if table is None else table
    ).items():
        if posix.endswith(suffix) and qualname == allowed:
            return True
    return False


def _mentions_lock(node):
    """True when a with-item expression names something ``*_lock``."""
    for child in ast.walk(node):
        name = None
        if isinstance(child, ast.Attribute):
            name = child.attr
        elif isinstance(child, ast.Name):
            name = child.id
        if name is not None and (name == "lock" or name.endswith("_lock")):
            return True
    return False


def _constant_int(node):
    return isinstance(node, ast.Constant) and isinstance(node.value, int)


def _dense_shape_tuple(node):
    """A literal shape tuple with >= 2 non-constant dimensions."""
    if not isinstance(node, ast.Tuple) or len(node.elts) < 2:
        return False
    dynamic = [e for e in node.elts if not _constant_int(e)]
    return len(dynamic) >= 2


class _Linter(ast.NodeVisitor):
    def __init__(self, path):
        self.path = path
        self.violations = []
        self._qualname = []
        self._lock_depth = 0
        self._public = any(
            prefix in _posix(path) for prefix in _PUBLIC_PREFIXES
        )

    def report(self, node, rule, message):
        self.violations.append(
            Violation(self.path, node.lineno, rule, message)
        )

    @property
    def qualname(self):
        return ".".join(self._qualname) or "<module>"

    # -- scope tracking -------------------------------------------------

    def _visit_scope(self, node):
        self._qualname.append(node.name)
        self.generic_visit(node)
        self._qualname.pop()

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope
    visit_ClassDef = _visit_scope

    def _visit_with(self, node):
        locked = any(_mentions_lock(item.context_expr) for item in node.items)
        if locked:
            self._lock_depth += 1
        self.generic_visit(node)
        if locked:
            self._lock_depth -= 1

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    # -- rules ----------------------------------------------------------

    def visit_BinOp(self, node):
        if isinstance(node.op, ast.MatMult) and self._lock_depth:
            self.report(
                node,
                "lock-discipline",
                "matrix product inside a `with ..._lock:` block in "
                "{}; compute outside the lock, publish under it".format(
                    self.qualname
                ),
            )
        self.generic_visit(node)

    def visit_Call(self, node):
        func = node.func
        if isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        self._check_callback_dispatch(node, func)
        self._check_int32_args(node)
        self._check_shm_create(node, func)
        self.generic_visit(node)

    def _check_callback_dispatch(self, node, func):
        if not self._lock_depth:
            return
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is not None and (
            name == "callback" or name.endswith("_callback")
        ):
            self.report(
                node,
                "lock-discipline",
                "callback dispatched inside a `with ..._lock:` block in "
                "{}; enqueue the event and invoke callbacks from a "
                "notifier thread with no lock held".format(self.qualname),
            )

    def _check_shm_create(self, node, func):
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name != "SharedMemory":
            return
        creates = any(
            keyword.arg == "create"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in node.keywords
        )
        if creates and not _is_whitelisted(
            self.path, self.qualname, SHM_WHITELIST
        ):
            self.report(
                node,
                "shm-lifecycle",
                "bare SharedMemory(create=True) in {}; create segments "
                "through repro.server.shm.SegmentRegistry.create so the "
                "reaper can unlink them on every exit path".format(
                    self.qualname
                ),
            )

    def _check_attribute_call(self, node, func):
        if func.attr in ("toarray", "todense"):
            if not _is_whitelisted(self.path, self.qualname):
                self.report(
                    node,
                    "dense-materialization",
                    ".{}() in {} is not whitelisted; stay sparse or use "
                    "repro.graph.matrices.dense_rows".format(
                        func.attr, self.qualname
                    ),
                )
            return
        if func.attr == "multiply" and self._lock_depth:
            self.report(
                node,
                "lock-discipline",
                ".multiply() inside a `with ..._lock:` block in "
                "{}; compute outside the lock, publish under it".format(
                    self.qualname
                ),
            )
        if (
            isinstance(func.value, ast.Name)
            and func.value.id in _NUMPY_ALIASES
        ):
            self._check_numpy_alloc(node, func.attr)
        if func.attr == "astype" and any(
            isinstance(arg, ast.Constant) and arg.value == "int32"
            for arg in node.args
        ):
            self.report(
                node,
                "int32-index",
                'astype("int32") in {}; indices must stay 64-bit '
                "safe".format(self.qualname),
            )

    def _check_numpy_alloc(self, node, attr):
        if attr == "int32":
            return  # handled as an Attribute read in visit_Attribute
        dense = False
        if attr in ("identity", "eye"):
            dense = bool(node.args) and not _constant_int(node.args[0])
        elif attr in ("zeros", "empty", "ones", "full"):
            dense = bool(node.args) and _dense_shape_tuple(node.args[0])
        if dense and not _is_whitelisted(self.path, self.qualname):
            self.report(
                node,
                "dense-materialization",
                "np.{}(...) allocates a dense 2-D array in {} outside "
                "the whitelist; see DENSE_WHITELIST in "
                "tools/lint_repro.py".format(attr, self.qualname),
            )

    def _check_int32_args(self, node):
        for keyword in node.keywords:
            value = keyword.value
            if (
                keyword.arg == "dtype"
                and isinstance(value, ast.Constant)
                and value.value == "int32"
            ):
                self.report(
                    node,
                    "int32-index",
                    'dtype="int32" in {}; indices must stay 64-bit '
                    "safe".format(self.qualname),
                )

    def visit_Attribute(self, node):
        if (
            node.attr == "int32"
            and isinstance(node.value, ast.Name)
            and node.value.id in _NUMPY_ALIASES
        ):
            self.report(
                node,
                "int32-index",
                "np.int32 in {}; indices must stay 64-bit safe".format(
                    self.qualname
                ),
            )
        self.generic_visit(node)

    def visit_Raise(self, node):
        if self._public and node.exc is not None:
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            if (
                isinstance(target, ast.Name)
                and target.id in _BARE_EXCEPTIONS
            ):
                self.report(
                    node,
                    "exception-taxonomy",
                    "public module raises bare {} in {}; raise a "
                    "repro.exceptions.ReproError subclass".format(
                        target.id, self.qualname
                    ),
                )
        self.generic_visit(node)


def _collect_suppressions(text, path):
    """``{line: rule}`` plus violations for malformed waivers."""
    suppressions = {}
    malformed = []
    for number, line in enumerate(text.splitlines(), start=1):
        if "repro-lint" not in line:
            continue
        match = _SUPPRESSION.search(line)
        if match is None:
            malformed.append(
                Violation(
                    path,
                    number,
                    "unused-suppression",
                    "malformed repro-lint comment; expected "
                    "`# repro-lint: ok(<rule>) <reason>`",
                )
            )
            continue
        rule, reason = match.group("rule"), match.group("reason")
        if rule not in RULES:
            malformed.append(
                Violation(
                    path,
                    number,
                    "unused-suppression",
                    "unknown rule {!r} in repro-lint comment".format(rule),
                )
            )
        elif not reason:
            malformed.append(
                Violation(
                    path,
                    number,
                    "unused-suppression",
                    "repro-lint suppression needs a reason",
                )
            )
        else:
            suppressions[number] = rule
    return suppressions, malformed


def lint_source(text, path="<string>"):
    """Lint one module's source text; returns a list of Violations."""
    suppressions, violations = _collect_suppressions(text, path)
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as error:
        violations.append(
            Violation(
                path,
                error.lineno or 0,
                "syntax",
                "cannot parse: {}".format(error.msg),
            )
        )
        return violations

    linter = _Linter(path)
    linter.visit(tree)

    used = set()
    for violation in linter.violations:
        waived = False
        for line in (violation.line, violation.line - 1):
            if suppressions.get(line) == violation.rule:
                used.add(line)
                waived = True
                break
        if not waived:
            violations.append(violation)

    for line, rule in sorted(suppressions.items()):
        if line not in used:
            violations.append(
                Violation(
                    path,
                    line,
                    "unused-suppression",
                    "suppression for {!r} matches no finding; remove "
                    "it".format(rule),
                )
            )
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def lint_file(path):
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path)


def iter_python_files(paths):
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, _dirs, files in os.walk(path):
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Check repo invariants (see module docstring)."
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    args = parser.parse_args(argv)
    violations = []
    checked = 0
    for path in iter_python_files(args.paths):
        checked += 1
        violations.extend(lint_file(path))
    for violation in violations:
        print(
            "{}:{}: {}: {}".format(
                violation.path, violation.line, violation.rule,
                violation.message,
            )
        )
    print(
        "lint_repro: {} file(s), {} violation(s)".format(
            checked, len(violations)
        ),
        file=sys.stderr,
    )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
